"""Build one training iteration's op list for the timeline scheduler.

This is where the paper's three latency components meet: forward and
backward computation on the PE array, offload/prefetch DMAs on the
virtualization channel (with vDNN's pinned-buffer back-pressure and
bounded prefetch lookahead), and collective synchronization on the ring
networks.  The resulting :class:`~repro.core.timeline.OpList` encodes
every overlap opportunity and every stall the design point implies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import SystemConfig
from repro.core.timeline import EngineKind, OpList
from repro.dnn.graph import Network
from repro.dnn.layers import LayerKind
from repro.training.backprop import TrainingStep, expand
from repro.training.parallel import (ParallelStrategy, PartitionedLayer,
                                     partition)
from repro.vmem.policy import MigrationAction, MigrationPolicy


@dataclass(frozen=True)
class IterationPlan:
    """Everything needed to schedule (and introspect) one iteration."""

    net: Network
    batch: int
    strategy: ParallelStrategy
    parts: dict[str, PartitionedLayer]
    step: TrainingStep
    #: producer layer -> per-device shard bytes migrated (0 if resident).
    migrated_shards: dict[str, int]

    @property
    def offload_bytes_per_device(self) -> int:
        return sum(self.migrated_shards.values())

    @property
    def round_trip_bytes_per_device(self) -> int:
        return 2 * self.offload_bytes_per_device

    @property
    def sync_bytes_per_iteration(self) -> int:
        total = 0
        for part in self.parts.values():
            for sync in (part.fwd_sync, part.bwd_sync):
                if sync is not None:
                    total += sync.nbytes
        return total


def plan_iteration(net: Network, config: SystemConfig, batch: int,
                   strategy: ParallelStrategy) -> IterationPlan:
    """Partition the network and derive the migration plan."""
    parts = {p.name: p for p in partition(net, batch, strategy,
                                          config.n_devices)}
    policy = MigrationPolicy(virtualize=config.virtualizes)
    tensor_plans = policy.plan(net, batch)
    step = expand(net, tensor_plans)
    migrated = {
        plan.producer: parts[plan.producer].out_shard_bytes
        for plan in tensor_plans
        if plan.action is MigrationAction.OFFLOAD
    }
    return IterationPlan(net=net, batch=batch, strategy=strategy,
                         parts=parts, step=step, migrated_shards=migrated)


@dataclass(frozen=True)
class InferencePlan:
    """One forward-only (serving) batch on a design point.

    Inference has no backward pass and therefore no feature-map
    offload; what stresses the memory system instead is *weight
    streaming*: a consolidated serving node hosts many tenant models,
    so a request batch finds its model's weights cold in the backing
    store and must fetch them over the virtualization channel.
    Mirroring the paper's stress-test methodology (every eligible
    tensor migrates regardless of fit, Section IV), every weighted
    layer streams its weights; only designs without a migration channel
    (the oracle) keep weights resident.
    """

    net: Network
    batch: int
    strategy: ParallelStrategy
    parts: dict[str, PartitionedLayer]
    #: layer -> per-device weight bytes fetched from the backing store
    #: (tied ``weight_group`` buffers are fetched once, at the first
    #: member).
    streamed_weights: dict[str, int]

    @property
    def weight_stream_bytes_per_device(self) -> int:
        return sum(self.streamed_weights.values())

    @property
    def sync_bytes_per_iteration(self) -> int:
        total = 0
        for part in self.parts.values():
            if part.fwd_sync is not None:
                total += part.fwd_sync.nbytes
        return total


def plan_inference(net: Network, config: SystemConfig, batch: int,
                   strategy: ParallelStrategy) -> InferencePlan:
    """Partition the network and derive the weight-streaming plan."""
    if strategy is ParallelStrategy.PIPELINE:
        raise ValueError(
            "inference serving replicates the model per device; "
            "pipeline-parallel inference is not modeled")
    parts = {p.name: p for p in partition(net, batch, strategy,
                                          config.n_devices)}
    streamed: dict[str, int] = {}
    if config.virtualizes:
        seen_groups: set[str] = set()
        for layer in net.layers:
            if not layer.weight_elems:
                continue
            if layer.weight_group:
                if layer.weight_group in seen_groups:
                    continue
                seen_groups.add(layer.weight_group)
            nbytes = layer.weight_bytes
            if strategy is ParallelStrategy.MODEL:
                # Model-parallel shards each weight matrix N-wise.
                nbytes = max(1, nbytes // config.n_devices)
            streamed[layer.name] = nbytes
    return InferencePlan(net=net, batch=batch, strategy=strategy,
                         parts=parts, streamed_weights=streamed)


def build_inference_ops(plan: InferencePlan,
                        config: SystemConfig) -> OpList:
    """Emit one forward-only batch's ops in issue order.

    Weight fetches ride the prefetch DMA engine with the same bounded
    lookahead as training prefetches (``prefetch_window`` layers of
    run-ahead), so a fast backing store hides them behind compute and
    a slow one exposes them -- the serving-time memory wall.
    """
    ops = OpList()
    device = config.device
    net = plan.net
    parts = plan.parts

    ready: dict[str, int | None] = {}
    sync_uid: dict[str, int] = {}
    computes: list[int] = []

    for name in net.layer_names:
        layer = net.layer(name)
        if layer.kind is LayerKind.INPUT:
            ready[name] = None
            continue
        part = parts[name]

        preds = net.predecessors(name)
        deps = [ready[p] for p in preds if ready.get(p) is not None]
        # Chunk-pipelined layer-boundary collectives, exactly as in the
        # training forward pass: wait on grandparents' all-gathers.
        for p in preds:
            for gp in net.predecessors(p):
                if gp in sync_uid:
                    deps.append(sync_uid[gp])

        if name in plan.streamed_weights:
            nbytes = plan.streamed_weights[name]
            gate: list[int] = []
            if len(computes) >= config.prefetch_window:
                gate = [computes[-config.prefetch_window]]
            fetch = ops.add(EngineKind.DMA_IN,
                            config.vmem.transfer_time(nbytes),
                            gate, tag=f"wfetch:{name}", nbytes=nbytes)
            deps.append(fetch)

        compute = ops.add(EngineKind.COMPUTE,
                          device.op_time(list(part.fwd_gemms),
                                         part.fwd_stream_bytes),
                          deps, tag=f"fwd:{name}")
        computes.append(compute)
        if part.fwd_sync is not None:
            sync_uid[name] = ops.add(
                EngineKind.COMM,
                config.collectives.time(part.fwd_sync.primitive,
                                        part.fwd_sync.nbytes),
                [compute], tag=f"sync-fwd:{name}",
                nbytes=part.fwd_sync.nbytes)
        ready[name] = compute

    return ops


def build_iteration_ops(plan: IterationPlan,
                        config: SystemConfig) -> OpList:
    """Emit the iteration's ops in dependency-consistent issue order."""
    ops = OpList()
    device = config.device
    net = plan.net
    parts = plan.parts

    fwd_ready: dict[str, int | None] = {}
    fwd_sync_uid: dict[str, int] = {}
    offload_uid: dict[str, int] = {}     # producer -> its offload op
    offload_order: list[int] = []

    # ---- Forward propagation -------------------------------------------
    for name in plan.step.fwd_order:
        layer = net.layer(name)
        part = parts[name]
        if layer.kind is LayerKind.INPUT:
            fwd_ready[name] = None
            continue

        preds = net.predecessors(name)
        deps = [fwd_ready[p] for p in preds
                if fwd_ready.get(p) is not None]
        # Layer-boundary collectives are chunk-pipelined with the
        # consumer's compute (NCCL-style): a layer may run one step
        # ahead of communication, so it waits on its *grandparents'*
        # all-gathers, not its parents'.
        for p in preds:
            for gp in net.predecessors(p):
                if gp in fwd_sync_uid:
                    deps.append(fwd_sync_uid[gp])
        # vDNN pinned-buffer back-pressure: at most `offload_window`
        # offloads may be outstanding before compute stalls.
        if len(offload_order) >= config.offload_window:
            deps.append(offload_order[-config.offload_window])
        compute = ops.add(EngineKind.COMPUTE,
                          device.op_time(list(part.fwd_gemms),
                                         part.fwd_stream_bytes),
                          deps, tag=f"fwd:{name}")
        ready = compute
        if part.fwd_sync is not None:
            sync = ops.add(EngineKind.COMM,
                           config.collectives.time(
                               part.fwd_sync.primitive,
                               part.fwd_sync.nbytes),
                           [compute], tag=f"sync-fwd:{name}",
                           nbytes=part.fwd_sync.nbytes)
            fwd_sync_uid[name] = sync
            ready = sync
        fwd_ready[name] = compute if part.fwd_sync is not None else ready

        # Offload every tensor whose last forward reuse is this layer;
        # a gathered tensor only becomes complete after its collective.
        for producer in plan.step.prefetch_sites.get(name, ()):
            shard = plan.migrated_shards[producer]
            uid = ops.add(EngineKind.DMA_OUT,
                          config.vmem.transfer_time(shard),
                          [ready], tag=f"offload:{producer}",
                          nbytes=shard)
            offload_uid[producer] = uid
            offload_order.append(uid)

    # ---- Backward propagation ------------------------------------------
    bwd_ready: dict[str, int] = {}
    bwd_sync_uid: dict[str, int] = {}
    bwd_computes: list[int] = []
    for step_index, name in enumerate(plan.step.bwd_order):
        layer = net.layer(name)
        part = parts[name]

        succs = net.successors(name)
        deps = [bwd_ready[s] for s in succs if s in bwd_ready]
        # Pipelined gradient collectives: one step of run-ahead, so a
        # layer's backward waits on its grand-successors' dX reductions.
        if plan.strategy is ParallelStrategy.MODEL:
            for s in succs:
                for gs in net.successors(s):
                    if gs in bwd_sync_uid:
                        deps.append(bwd_sync_uid[gs])
        if not deps and fwd_ready.get(name) is not None:
            # The loss-side frontier starts once forward has finished.
            deps = [fwd_ready[name]]  # type: ignore[list-item]

        # Prefetches feeding this backward step, throttled to a bounded
        # lookahead so device memory is not flooded early.
        gate: list[int] = []
        if step_index >= config.prefetch_window:
            gate = [bwd_computes[step_index - config.prefetch_window]]
        prefetch_ids = []
        for producer in plan.step.prefetch_sites.get(name, ()):
            shard = plan.migrated_shards[producer]
            prefetch_ids.append(ops.add(
                EngineKind.DMA_IN, config.vmem.transfer_time(shard),
                gate + [offload_uid[producer]],
                tag=f"prefetch:{producer}", nbytes=shard))

        # Cheap tensors regenerated instead of migrated (footnote 4).
        recompute_ids = []
        for producer in plan.step.recompute_sites.get(name, ()):
            rc_part = parts[producer]
            recompute_ids.append(ops.add(
                EngineKind.COMPUTE,
                device.op_time(list(rc_part.fwd_gemms),
                               rc_part.fwd_stream_bytes),
                list(prefetch_ids), tag=f"recompute:{producer}"))

        compute = ops.add(EngineKind.COMPUTE,
                          device.op_time(list(part.bwd_gemms),
                                         part.fwd_stream_bytes),
                          deps + prefetch_ids + recompute_ids,
                          tag=f"bwd:{name}")
        bwd_computes.append(compute)

        if part.bwd_sync is not None:
            sync = ops.add(EngineKind.COMM,
                           config.collectives.time(part.bwd_sync.primitive,
                                                   part.bwd_sync.nbytes),
                           [compute], tag=f"sync-bwd:{name}",
                           nbytes=part.bwd_sync.nbytes)
            # Model-parallel dX reductions gate the grand-producers'
            # backward pass (pipelined, above); data-parallel dW
            # all-reduces only gate iteration end.
            bwd_sync_uid[name] = sync
        bwd_ready[name] = compute

    return ops
