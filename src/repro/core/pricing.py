"""Memoized pricing for the vectorized simulator core.

Profiling the campaign grid shows the simulator spends most of its
time *re-deriving prices*, not scheduling: every ``simulate()`` call
re-partitions the network, re-times every layer's GEMM sequence (three
times over -- once for the plan seconds, once for the prefetch
context, once for op emission), and re-prices identical collectives,
while all six design points share one device model and one device
count, so the answers are identical across most of the grid.

This module is the memo layer the vectorized core routes those
derivations through:

* :func:`cached_partition` / :func:`cached_migration` -- per-network
  partitioning and migration planning, keyed on the network's
  mutation ``version`` so a network edited after caching can never
  replay stale plans (networks are weakly referenced; test-local
  graphs do not pin memory);
* :func:`layer_times` -- per-layer (forward, backward) seconds for a
  (device, batch, strategy, n_devices) cell, shared by every design
  point with the same device model;
* :func:`layer_fwd_time` / :func:`layer_bwd_time` -- the pipeline
  stage-timing equivalents, keyed per layer;
* :func:`collective_time` -- ring-collective latency per
  (model, primitive, nbytes);
* :func:`memoized_pricer` -- wraps a per-transfer DMA pricer with a
  size-keyed memo and, when the model provides one, a vectorized
  ``array`` variant for whole fetch lists;
* :func:`cached_cluster_cell` -- cross-instance memo for the cluster
  cost oracle, so four scheduling policies price one design's job
  classes with one set of ``simulate()`` calls.

Every cache is a pure memo: values are computed by exactly the code
the scalar core runs, so cached and uncached paths are byte-identical.
Under ``REPRO_SCALAR_CORE=1`` every helper here bypasses its memo and
computes fresh -- the escape hatch reproduces the seed's work, not
just its answers.  :func:`clear_caches` empties everything; the bench
harness calls it so cold timings measure simulation, not cache replay.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING
from weakref import WeakKeyDictionary

from repro.core.optable import scalar_core_enabled
from repro.telemetry.registry import NOOP, on_activation
from repro.training.backprop import TrainingStep, expand
from repro.training.parallel import (ParallelStrategy, PartitionedLayer,
                                     partition)
from repro.vmem.policy import MigrationPolicy, TensorPlan

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.accelerator.device import DeviceSpec
    from repro.core.metrics import SimulationResult
    from repro.core.system import CollectiveModel, SystemConfig
    from repro.dnn.graph import Network
    from repro.dnn.layers import Layer

#: Per-network memo store.  Weak keys: a network that dies releases
#: its cached plans with it.
_NET_CACHES: "WeakKeyDictionary[Network, dict]" = WeakKeyDictionary()

#: Every CollectiveModel carrying a per-instance time memo (stashed in
#: the instance ``__dict__`` under this attribute -- keying a global
#: dict on the model would hash its channel tuple on every lookup).
_COLLECTIVE_MEMO_ATTR = "_pricing_time_memo"
_COLLECTIVE_MODELS: list = []

#: (device, layer, batch) -> seconds, one dict per direction.
_LAYER_FWD: dict = {}
_LAYER_BWD: dict = {}
#: (device, layer, batch) -> (activation-grad, weight-grad) seconds.
_LAYER_BWD_SPLIT: dict = {}

#: (SystemConfig, job-class key) -> SimulationResult, shared across
#: cluster cost-oracle instances (one design is priced once, not once
#: per scheduling policy).
_CLUSTER_CELLS: dict = {}

#: Telemetry probes: one hit/miss counter pair per memo, rebound
#: between real series and :data:`NOOP` by the registry activation
#: hook so the lookup paths never test an enabled flag.
_MEMO_NAMES = ("partition", "migration", "layer-times", "layer-fwd",
               "layer-bwd", "layer-bwd-split", "collective", "dma",
               "cluster-cell")
_HITS: dict = dict.fromkeys(_MEMO_NAMES, NOOP)
_MISSES: dict = dict.fromkeys(_MEMO_NAMES, NOOP)


def _bind_probes(registry) -> None:
    for memo in _MEMO_NAMES:
        if registry is None:
            _HITS[memo] = _MISSES[memo] = NOOP
        else:
            _HITS[memo] = registry.counter(
                "repro_pricing_memo_hits_total",
                "pricing-memo lookups served from cache", memo=memo)
            _MISSES[memo] = registry.counter(
                "repro_pricing_memo_misses_total",
                "pricing-memo lookups computed fresh", memo=memo)


on_activation(_bind_probes)


def clear_caches() -> None:
    """Empty every pricing memo (cold-benchmark hygiene)."""
    _NET_CACHES.clear()
    for model in _COLLECTIVE_MODELS:
        model.__dict__[_COLLECTIVE_MEMO_ATTR].clear()
    _COLLECTIVE_MODELS.clear()
    _LAYER_FWD.clear()
    _LAYER_BWD.clear()
    _LAYER_BWD_SPLIT.clear()
    _CLUSTER_CELLS.clear()
    # The design-point registry memo lives with the factories; imported
    # lazily because design_points sits above this module in the layer
    # order.
    from repro.core.design_points import clear_design_point_cache
    clear_design_point_cache()


def _net_cache(net: "Network") -> dict:
    cache = _NET_CACHES.get(net)
    if cache is None:
        cache = _NET_CACHES[net] = {}
    return cache


def cached_partition(net: "Network", batch: int,
                     strategy: ParallelStrategy,
                     n_devices: int) -> list[PartitionedLayer]:
    """Memoized :func:`repro.training.parallel.partition`.

    Returns the cached list itself; callers treat it as read-only
    (every consumer immediately re-keys it into a dict).
    """
    if scalar_core_enabled():
        return partition(net, batch, strategy, n_devices)
    key = ("partition", net.version, batch, strategy, n_devices)
    cache = _net_cache(net)
    if key not in cache:
        _MISSES["partition"].inc()
        cache[key] = partition(net, batch, strategy, n_devices)
    else:
        _HITS["partition"].inc()
    return cache[key]


def cached_migration(net: "Network", batch: int, virtualize: bool) \
        -> tuple[list[TensorPlan], TrainingStep]:
    """Memoized migration plan + forward/backward expansion.

    Returns ``(tensor_plans, training_step)`` for the default
    :class:`~repro.vmem.policy.MigrationPolicy` at this ``virtualize``
    setting -- the only policy shape ``plan_iteration`` builds.
    """
    policy = MigrationPolicy(virtualize=virtualize)
    if scalar_core_enabled():
        plans = policy.plan(net, batch)
        return plans, expand(net, plans)
    key = ("migration", net.version, batch, virtualize)
    cache = _net_cache(net)
    if key not in cache:
        _MISSES["migration"].inc()
        plans = policy.plan(net, batch)
        cache[key] = (plans, expand(net, plans))
    else:
        _HITS["migration"].inc()
    return cache[key]


def layer_times(net: "Network", device: "DeviceSpec", batch: int,
                strategy: ParallelStrategy, n_devices: int) \
        -> dict[str, tuple[float, float]]:
    """Per-layer ``name -> (fwd_seconds, bwd_seconds)`` for one cell.

    Times every partitioned layer's forward and backward kernels once;
    the schedule builder, the plan-seconds walk, and the prefetch
    context all read from the same dict.  Keyed on the device spec, so
    design points sharing the baseline device share the entry.
    """
    parts = cached_partition(net, batch, strategy, n_devices)

    def compute() -> dict[str, tuple[float, float]]:
        op_time = device.op_time
        return {
            p.name: (op_time(p.fwd_gemms, p.fwd_stream_bytes),
                     op_time(p.bwd_gemms, p.fwd_stream_bytes))
            for p in parts}

    if scalar_core_enabled():
        return compute()
    key = ("layer-times", net.version, device, batch, strategy,
           n_devices)
    cache = _net_cache(net)
    if key not in cache:
        _MISSES["layer-times"].inc()
        cache[key] = compute()
    else:
        _HITS["layer-times"].inc()
    return cache[key]


def layer_fwd_time(device: "DeviceSpec", layer: "Layer",
                   batch: int) -> float:
    """Memoized :meth:`DeviceSpec.layer_fwd_time` (pipeline staging)."""
    if scalar_core_enabled():
        return device.layer_fwd_time(layer, batch)
    key = (device, layer, batch)
    if key not in _LAYER_FWD:
        _MISSES["layer-fwd"].inc()
        _LAYER_FWD[key] = device.layer_fwd_time(layer, batch)
    else:
        _HITS["layer-fwd"].inc()
    return _LAYER_FWD[key]


def layer_bwd_time(device: "DeviceSpec", layer: "Layer",
                   batch: int) -> float:
    """Memoized :meth:`DeviceSpec.layer_bwd_time` (pipeline staging)."""
    if scalar_core_enabled():
        return device.layer_bwd_time(layer, batch)
    key = (device, layer, batch)
    if key not in _LAYER_BWD:
        _MISSES["layer-bwd"].inc()
        _LAYER_BWD[key] = device.layer_bwd_time(layer, batch)
    else:
        _HITS["layer-bwd"].inc()
    return _LAYER_BWD[key]


def layer_bwd_split_time(device: "DeviceSpec", layer: "Layer",
                         batch: int) -> tuple[float, float]:
    """Memoized :meth:`DeviceSpec.layer_bwd_split_time`.

    The (activation-grad, weight-grad) pair feeding zero-bubble
    stage timing; sums to :func:`layer_bwd_time` up to float
    re-association.
    """
    if scalar_core_enabled():
        return device.layer_bwd_split_time(layer, batch)
    key = (device, layer, batch)
    if key not in _LAYER_BWD_SPLIT:
        _MISSES["layer-bwd-split"].inc()
        _LAYER_BWD_SPLIT[key] = device.layer_bwd_split_time(layer,
                                                            batch)
    else:
        _HITS["layer-bwd-split"].inc()
    return _LAYER_BWD_SPLIT[key]


def _collective_memo(model: "CollectiveModel") -> dict:
    # Frozen dataclasses still have a __dict__; stashing the memo there
    # (via object.__setattr__) skips hashing the model's channel tuple
    # on every price lookup, which profiling shows dominates the cost
    # of a memo keyed (model, primitive, nbytes).
    memo = model.__dict__.get(_COLLECTIVE_MEMO_ATTR)
    if memo is None:
        memo = {}
        object.__setattr__(model, _COLLECTIVE_MEMO_ATTR, memo)
        _COLLECTIVE_MODELS.append(model)
    return memo


def collective_time(model: "CollectiveModel", primitive,
                    nbytes: int) -> float:
    """Memoized :meth:`CollectiveModel.time`."""
    if scalar_core_enabled():
        return model.time(primitive, nbytes)
    memo = _collective_memo(model)
    key = (primitive, nbytes)
    if key not in memo:
        _MISSES["collective"].inc()
        memo[key] = model.time(primitive, nbytes)
    else:
        _HITS["collective"].inc()
    return memo[key]


def collective_pricer(model: "CollectiveModel") \
        -> Callable[[object, int], float]:
    """Bind one model's memoized ``time`` (env check hoisted out).

    Returns a ``(primitive, nbytes) -> seconds`` callable; inner-loop
    emitters call it per op without re-reading ``REPRO_SCALAR_CORE``
    or re-fetching the instance memo each time.
    """
    if scalar_core_enabled():
        return model.time
    memo = _collective_memo(model)
    time = model.time

    def priced(primitive, nbytes: int) -> float:
        key = (primitive, nbytes)
        if key not in memo:
            _MISSES["collective"].inc()
            memo[key] = time(primitive, nbytes)
        else:
            _HITS["collective"].inc()
        return memo[key]

    return priced


class MemoPricer:
    """A per-transfer DMA pricer with a size-keyed memo.

    Wraps the scalar pricing callable the plan derived; repeated sizes
    (every offload/prefetch pair, every pipeline stash) price once.
    ``array_fn``, when provided, prices a whole list of sizes through
    the model's vectorized variant -- elementwise identical to the
    scalar calls, just without the per-call Python overhead.
    """

    __slots__ = ("fn", "array_fn", "cache")

    def __init__(self, fn: Callable[[int], float],
                 array_fn: Callable | None = None) -> None:
        self.fn = fn
        self.array_fn = array_fn
        self.cache: dict[int, float] = {}

    def __call__(self, nbytes: int) -> float:
        cache = self.cache
        if nbytes not in cache:
            _MISSES["dma"].inc()
            cache[nbytes] = self.fn(nbytes)
        else:
            _HITS["dma"].inc()
        return cache[nbytes]

    def many(self, sizes: list[int]) -> list[float]:
        """Price a list of transfer sizes (vectorized when possible)."""
        if self.array_fn is not None and len(sizes) > 2:
            # The array variant recomputes every size regardless of
            # what the memo holds, so the whole batch counts as misses.
            _MISSES["dma"].inc(len(sizes))
            priced = self.array_fn(sizes)
            out = [float(x) for x in priced]
            self.cache.update(zip(sizes, out))
            return out
        return [self(n) for n in sizes]


def memoized_pricer(fn: Callable[[int], float],
                    array_fn: Callable | None = None) \
        -> Callable[[int], float]:
    """Wrap a DMA pricer in a memo (identity under the scalar core)."""
    if scalar_core_enabled():
        return fn
    return MemoPricer(fn, array_fn)


def cached_cluster_cell(config: "SystemConfig", key: tuple,
                        thunk: Callable[[], "SimulationResult"]) \
        -> "SimulationResult":
    """Cross-oracle memo for cluster job pricing.

    ``key`` identifies the job class; together with the (hashable)
    design point it addresses one ``simulate()`` outcome shared by
    every scheduler policy comparing on that design.
    """
    if scalar_core_enabled():
        return thunk()
    full_key = (config, key)
    if full_key not in _CLUSTER_CELLS:
        _MISSES["cluster-cell"].inc()
        _CLUSTER_CELLS[full_key] = thunk()
    else:
        _HITS["cluster-cell"].inc()
    return _CLUSTER_CELLS[full_key]
