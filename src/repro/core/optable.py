"""Columnar (struct-of-arrays) op tables: the vectorized simulator core.

The scalar reference core (:mod:`repro.core.timeline`) materializes one
frozen :class:`~repro.core.timeline.Op` dataclass per operation and one
:class:`~repro.core.timeline.ScheduledOp` per scheduling decision.
That is the right shape for tests and trace export, but a campaign
grid schedules hundreds of thousands of ops, and per-op Python objects
(allocation, ``__post_init__`` validation, attribute walks) dominate
the wall clock long before the arithmetic does.

This module keeps the *data* in parallel columns instead:

* :class:`OpTable` -- an append-only struct-of-arrays op container with
  the exact ``add()`` signature of :class:`~repro.core.timeline.OpList`,
  so every emitter works against either sink unchanged;
* :func:`schedule_table` -- the same deterministic list-scheduler
  recurrence as :func:`~repro.core.timeline.run_timeline`, run as a
  tight loop over the columns (the recurrence is a sequential
  dependency chain, so a numpy level-sweep would lose: the evaluated
  graphs average under two ops per dependency level);
* :class:`ColumnarTimeline` -- the scheduled result, duck-compatible
  with :class:`~repro.core.timeline.TimelineResult` (``makespan``,
  ``busy``, ``busy_per_channel``, ``busy_time``, ``finish_of``,
  ``ops_on``, ``channels``, and a lazily materialized ``scheduled``
  tuple for trace export), plus :meth:`ColumnarTimeline.as_arrays`
  exposing the columns as numpy arrays for vectorized consumers
  (:func:`repro.vmem.prefetch.collect_prefetch_stats` prices its
  DMA/collective overlap on them).

Byte-identity is the contract: every float produced here -- start and
finish times, busy sums, the makespan -- is computed with the same
IEEE-754 operations in the same order as the scalar core, so golden
snapshots and differential tests compare *exactly* equal, not merely
close.  ``REPRO_SCALAR_CORE=1`` in the environment selects the scalar
core everywhere (emitters return :class:`OpList`, schedulers run
:func:`run_timeline`, pricing memoization is bypassed) for bisection.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.core.timeline import (EngineKind, Op, OpList, ScheduledOp,
                                 TimelineResult, run_timeline)
from repro.telemetry.registry import NOOP, on_activation

#: Environment variable selecting the scalar reference core.
SCALAR_CORE_ENV = "REPRO_SCALAR_CORE"

#: Telemetry probes for :func:`schedule_table`, updated once per call
#: *after* the scheduling loop -- the tight loop itself is untouched.
_SCHED_RUNS = NOOP
_SCHED_OPS = NOOP
_SCHED_TABLE_OPS = NOOP


def _bind_probes(registry) -> None:
    global _SCHED_RUNS, _SCHED_OPS, _SCHED_TABLE_OPS
    if registry is None:
        _SCHED_RUNS = _SCHED_OPS = _SCHED_TABLE_OPS = NOOP
    else:
        _SCHED_RUNS = registry.counter(
            "repro_schedule_runs_total",
            "schedule_table invocations")
        _SCHED_OPS = registry.counter(
            "repro_schedule_ops_total",
            "ops scheduled by schedule_table")
        _SCHED_TABLE_OPS = registry.histogram(
            "repro_schedule_table_ops",
            "ops per scheduled op table",
            buckets=(64, 128, 256, 512, 1024, 2048, 4096, 8192,
                     16384))


on_activation(_bind_probes)

#: Stable integer codes for the four engine kinds (column dtype int8).
ENGINE_CODE: dict[EngineKind, int] = {
    EngineKind.COMPUTE: 0,
    EngineKind.DMA_OUT: 1,
    EngineKind.DMA_IN: 2,
    EngineKind.COMM: 3,
}

#: Inverse of :data:`ENGINE_CODE`, indexable by code.
CODE_ENGINE: tuple[EngineKind, ...] = tuple(
    sorted(ENGINE_CODE, key=ENGINE_CODE.__getitem__))


def scalar_core_enabled() -> bool:
    """True when ``REPRO_SCALAR_CORE`` selects the scalar reference core.

    Read dynamically on every call (not cached at import) so tests and
    the bench harness can flip the escape hatch per invocation.
    """
    return os.environ.get(SCALAR_CORE_ENV, "") not in ("", "0")


class OpTable:
    """Struct-of-arrays op container, ``add()``-compatible with
    :class:`~repro.core.timeline.OpList`.

    Columns are plain Python lists while the table is being built
    (appends are the hot path); :meth:`ColumnarTimeline.as_arrays`
    freezes them to numpy arrays after scheduling.  Validation matches
    :class:`~repro.core.timeline.Op` exactly, so invalid emissions fail
    identically on either sink.
    """

    __slots__ = ("engines", "codes", "durations", "deps", "tags",
                 "nbytes", "channels", "_ops")

    def __init__(self) -> None:
        self.engines: list[EngineKind] = []
        #: Parallel :data:`ENGINE_CODE` ints -- the scheduler keys its
        #: slot dicts on these (int hashing beats enum hashing by an
        #: order of magnitude over a campaign's worth of ops).
        self.codes: list[int] = []
        self.durations: list[float] = []
        self.deps: list[tuple[int, ...]] = []
        self.tags: list[str] = []
        self.nbytes: list[int] = []
        self.channels: list[int] = []
        self._ops: list[Op] | None = None

    def add(self, engine: EngineKind, duration: float, deps: list[int],
            tag: str, nbytes: int = 0, channel: int = 0) -> int:
        """Append one op; returns its uid (dense, in issue order)."""
        uid = len(self.durations)
        if duration < 0:
            raise ValueError(f"op {tag}: negative duration")
        if nbytes < 0:
            raise ValueError(f"op {tag}: negative byte count")
        if channel < 0:
            raise ValueError(f"op {tag}: negative channel")
        dep_tuple = tuple(deps)
        if dep_tuple and max(dep_tuple) >= uid:
            raise ValueError(
                f"op {tag}: dependency on a later op (cycle)")
        self.engines.append(engine)
        self.codes.append(ENGINE_CODE[engine])
        self.durations.append(duration)
        self.deps.append(dep_tuple)
        self.tags.append(tag)
        self.nbytes.append(nbytes)
        self.channels.append(channel)
        self._ops = None
        return uid

    def __len__(self) -> int:
        return len(self.durations)

    @property
    def ops(self) -> list[Op]:
        """Materialized :class:`Op` view (lazily built, then cached).

        Exists so scalar consumers -- :func:`run_timeline`, tests that
        introspect tags/deps -- accept an :class:`OpTable` anywhere an
        :class:`OpList` is expected.
        """
        if self._ops is None or len(self._ops) != len(self.durations):
            self._ops = [
                Op(uid=i, engine=self.engines[i],
                   duration=self.durations[i], deps=self.deps[i],
                   tag=self.tags[i], nbytes=self.nbytes[i],
                   channel=self.channels[i])
                for i in range(len(self.durations))]
        return self._ops


class ColumnarTimeline:
    """Scheduled outcome of an :class:`OpTable` (vectorized core).

    Duck-compatible with :class:`~repro.core.timeline.TimelineResult`:
    exposes the same ``makespan`` / ``busy`` / ``busy_per_channel``
    attributes and ``finish_of`` / ``busy_time`` / ``ops_on`` /
    ``channels`` / ``scheduled`` surface, with identical float values.
    ``scheduled`` materializes per-op objects lazily, so consumers that
    never iterate ops (the ``simulate()`` fast path) never pay for
    them; :meth:`as_arrays` serves vectorized consumers instead.
    """

    __slots__ = ("table", "start", "finish", "prev_slot_finish",
                 "makespan", "busy", "busy_per_channel", "_scheduled",
                 "_arrays")

    def __init__(self, table: OpTable, start: list[float],
                 finish: list[float], prev_slot_finish: list[float],
                 makespan: float, busy: dict[EngineKind, float],
                 busy_per_channel: dict[tuple[EngineKind, int], float]) \
            -> None:
        self.table = table
        self.start = start
        self.finish = finish
        #: Per op: the finish time of the previous op on its
        #: (engine, channel) slot, 0.0 for the slot's first op.  The
        #: prefetch-stats collector needs it to separate engine
        #: serialization from dependency stalls.
        self.prev_slot_finish = prev_slot_finish
        self.makespan = makespan
        self.busy = busy
        self.busy_per_channel = busy_per_channel
        self._scheduled: tuple[ScheduledOp, ...] | None = None
        self._arrays: dict[str, np.ndarray] | None = None

    # -- TimelineResult surface ------------------------------------------

    @property
    def scheduled(self) -> tuple[ScheduledOp, ...]:
        """Per-op schedule as :class:`ScheduledOp` objects (lazy)."""
        if self._scheduled is None:
            ops = self.table.ops
            self._scheduled = tuple(
                ScheduledOp(op=ops[i], start=self.start[i],
                            finish=self.finish[i])
                for i in range(len(ops)))
        return self._scheduled

    def finish_of(self, uid: int) -> float:
        """Finish time (seconds) of the op with this uid."""
        return self.finish[uid]

    def ops_on(self, engine: EngineKind,
               channel: int | None = None) -> list[ScheduledOp]:
        """Scheduled ops of one engine (optionally one channel)."""
        return [s for s in self.scheduled if s.op.engine is engine
                and (channel is None or s.op.channel == channel)]

    def busy_time(self, engine: EngineKind,
                  channel: int | None = None) -> float:
        """Total seconds the engine executed ops (optionally per
        channel)."""
        if channel is None:
            return self.busy.get(engine, 0.0)
        return self.busy_per_channel.get((engine, channel), 0.0)

    @property
    def channels(self) -> tuple[int, ...]:
        """Channel indices present, ascending (SPMD timelines: (0,))."""
        return tuple(sorted(set(self.table.channels))) or (0,)

    # -- Vectorized surface ----------------------------------------------

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The schedule as numpy struct-of-arrays (cached).

        Keys: ``engine`` (int8 :data:`ENGINE_CODE` codes), ``duration``
        / ``start`` / ``finish`` / ``prev_slot_finish`` (float64
        seconds), ``nbytes`` (int64), ``channel`` (int32).  float64
        conversion is value-preserving, so vectorized consumers see the
        exact scheduled times.
        """
        if self._arrays is None:
            t = self.table
            self._arrays = {
                "engine": np.asarray(t.codes, dtype=np.int8),
                "duration": np.asarray(t.durations, dtype=np.float64),
                "nbytes": np.asarray(t.nbytes, dtype=np.int64),
                "channel": np.asarray(t.channels, dtype=np.int32),
                "start": np.asarray(self.start, dtype=np.float64),
                "finish": np.asarray(self.finish, dtype=np.float64),
                "prev_slot_finish": np.asarray(self.prev_slot_finish,
                                               dtype=np.float64),
            }
        return self._arrays


def schedule_table(table: OpTable) -> ColumnarTimeline:
    """List-schedule an :class:`OpTable`; byte-identical to
    :func:`~repro.core.timeline.run_timeline` on the same ops.

    The recurrence (op start = max of engine-free time and dependency
    finishes) is a sequential chain, so it runs as one tight loop over
    the columns; ``max`` and ``+`` on float64 are order-stable, and
    busy times accumulate in uid order exactly as the scalar core does.
    """
    codes = table.codes
    durations = table.durations
    deps = table.deps
    tab_channels = table.channels

    # Slot state indexed by engine code; dict keys are plain-int
    # channels (the enum-keyed dicts of the scalar core hash the enum
    # several times per op -- measurable over a campaign grid).
    free_by_code: list[dict[int, float]] = [{}, {}, {}, {}]
    busy_by_code: list[float] = [0.0, 0.0, 0.0, 0.0]
    busy_ch_by_code: list[dict[int, float]] = [{}, {}, {}, {}]
    finish: list[float] = []
    start: list[float] = []
    prev_slot: list[float] = []
    finish_append = finish.append
    start_append = start.append
    prev_append = prev_slot.append

    for i in range(len(durations)):
        ready = 0.0
        for d in deps[i]:
            f = finish[d]
            if f > ready:
                ready = f
        code = codes[i]
        channel = tab_channels[i]
        slots = free_by_code[code]
        free = slots.get(channel, 0.0)
        begin = free if free > ready else ready
        duration = durations[i]
        end = begin + duration
        slots[channel] = end
        busy_by_code[code] += duration
        busy_ch = busy_ch_by_code[code]
        busy_ch[channel] = busy_ch.get(channel, 0.0) + duration
        prev_append(free)
        start_append(begin)
        finish_append(end)

    busy = {engine: busy_by_code[code]
            for engine, code in ENGINE_CODE.items()}
    busy_per_channel = {
        (CODE_ENGINE[code], channel): seconds
        for code in range(4)
        for channel, seconds in busy_ch_by_code[code].items()}
    makespan = max(finish, default=0.0)
    _SCHED_RUNS.inc()
    _SCHED_OPS.inc(len(durations))
    _SCHED_TABLE_OPS.observe(len(durations))
    return ColumnarTimeline(table=table, start=start, finish=finish,
                            prev_slot_finish=prev_slot,
                            makespan=makespan, busy=busy,
                            busy_per_channel=busy_per_channel)


OpSink = Union[OpList, OpTable]
Timeline = Union[TimelineResult, ColumnarTimeline]


def new_op_sink() -> OpSink:
    """The op container the active core wants emitters to fill.

    Columnar :class:`OpTable` by default; :class:`OpList` under
    ``REPRO_SCALAR_CORE=1``.
    """
    return OpList() if scalar_core_enabled() else OpTable()


def schedule_ops(ops: OpSink) -> Timeline:
    """Schedule whichever sink the emitter produced."""
    if isinstance(ops, OpTable):
        return schedule_table(ops)
    return run_timeline(ops)
