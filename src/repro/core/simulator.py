"""Top-level system simulator (paper Section IV's methodology).

``simulate(config, network, batch, strategy)`` runs one training
iteration of a benchmark on a design point and returns a
:class:`~repro.core.metrics.SimulationResult` carrying the iteration
time, the Figure 11 latency breakdown, and the traffic accounting that
feeds Figure 12.
"""

from __future__ import annotations

from repro.core.metrics import (ExecutionMode, LatencyBreakdown,
                                SimulationResult)
from repro.core.optable import Timeline, schedule_ops
from repro.core.schedule import (build_inference_ops, build_iteration_ops,
                                 inference_pricer, iteration_pricer,
                                 plan_inference, plan_inference_prefetch,
                                 plan_iteration, plan_training_prefetch)
from repro.core.system import SystemConfig
from repro.core.timeline import EngineKind
from repro.dnn.graph import Network
from repro.dnn.registry import build_network
from repro.faults.lowering import (active_fault_model, degraded_config,
                                   healthy_config, iteration_fault_stats,
                                   record_fault_stats)
from repro.host.cpu import CpuBandwidthUsage, socket_usage
from repro.telemetry.spans import span
from repro.training.parallel import ParallelStrategy
from repro.vmem.prefetch import collect_prefetch_stats

DEFAULT_BATCH = 512


def _resolve(network: Network | str) -> Network:
    if isinstance(network, str):
        return build_network(network)
    return network


def simulate(config: SystemConfig, network: Network | str,
             batch: int = DEFAULT_BATCH,
             strategy: ParallelStrategy = ParallelStrategy.DATA,
             mode: ExecutionMode = ExecutionMode.TRAINING) \
        -> SimulationResult:
    """Simulate one training iteration (or one forward-only inference
    batch, with ``mode=ExecutionMode.INFERENCE``) on a design point.

    Args:
        config: the design point (hardware + policy knobs).  Factory
            builds come from :func:`repro.core.design_points.design_point`.
        network: a built :class:`~repro.dnn.graph.Network` or a
            registry name (``"VGG-E"``, ``"BERT-Large"``, ...).
        batch: global minibatch size in samples (per-device under data
            parallelism; whole-node under model parallelism).
        strategy: data, model, or pipeline parallelism.
            ``ParallelStrategy.PIPELINE`` routes through
            :mod:`repro.pipeline` and populates ``result.pipeline``.
        mode: ``TRAINING`` (default) or ``INFERENCE``.  Request-level
            serving and multi-job cluster runs have their own entry
            points (:func:`repro.serving.simulate_serving`,
            :func:`repro.cluster.simulate_cluster`).

    Returns:
        A :class:`SimulationResult`.  ``iteration_time`` and every
        breakdown component are seconds; all traffic fields are bytes
        per iteration.  Results are deterministic and identical under
        both simulator cores (``REPRO_SCALAR_CORE=1`` selects the
        scalar reference core; see ``docs/performance.md``).
    """
    net = _resolve(network)
    fault = active_fault_model(config)
    if fault is not None:
        return _simulate_faulted(fault, config, net, batch, strategy,
                                 mode)
    if mode is ExecutionMode.INFERENCE:
        return _simulate_inference(config, net, batch, strategy)
    if mode is not ExecutionMode.TRAINING:
        raise ValueError(f"simulate() cannot run mode {mode}; serving "
                         f"runs through repro.serving")
    if strategy is ParallelStrategy.PIPELINE:
        return _simulate_pipeline(config, net, batch)
    with span("plan", mode="training"):
        plan = plan_iteration(net, config, batch, strategy)
    with span("price", mode="training"):
        pricer = iteration_pricer(plan, config)
        psched = plan_training_prefetch(plan, config, pricer)
    with span("emit", mode="training"):
        ops = build_iteration_ops(plan, config, prefetch=psched,
                                  pricer=pricer)
    with span("schedule", mode="training"):
        timeline = schedule_ops(ops)

    breakdown = LatencyBreakdown(
        compute=timeline.busy_time(EngineKind.COMPUTE),
        sync=timeline.busy_time(EngineKind.COMM),
        vmem=(timeline.busy_time(EngineKind.DMA_OUT)
              + timeline.busy_time(EngineKind.DMA_IN)))

    host_traffic = (plan.round_trip_bytes_per_device
                    if config.uses_host_memory else 0)
    # Weak scaling: every worker trains a full `batch` (data-parallel)
    # or materializes full gathered feature maps (model-parallel), so
    # the per-device footprint is the full-batch footprint either way.
    footprint = net.training_footprint_bytes(batch)

    return SimulationResult(
        system=config.name,
        network=net.name,
        batch=batch,
        strategy=strategy,
        n_devices=config.n_devices,
        iteration_time=timeline.makespan,
        breakdown=breakdown,
        offload_bytes_per_device=plan.offload_bytes_per_device,
        sync_bytes=plan.sync_bytes_per_iteration,
        host_traffic_bytes_per_device=host_traffic,
        fits_in_device_memory=footprint <= config.device.memory_capacity,
        prefetch=collect_prefetch_stats(timeline, psched.policy,
                                        evictions=psched.evictions),
    )


def _simulate_faulted(fault, config: SystemConfig, net: Network,
                      batch: int, strategy: ParallelStrategy,
                      mode: ExecutionMode) -> SimulationResult:
    """Iteration-level fault path: re-price under degradation, fold
    against the healthy twin.

    Both legs are plain :func:`simulate` calls on ``fault_model="none"``
    configs, so the degraded numbers come out of the same byte-stable
    pipeline as any user-built design -- faults only move inputs.
    """
    import dataclasses

    with span("faults", model=fault.name, mode=mode.value):
        degraded = simulate(degraded_config(config), net, batch,
                            strategy, mode)
        healthy = simulate(healthy_config(config), net, batch,
                           strategy, mode)
    stats = iteration_fault_stats(
        fault, faulted_time=degraded.iteration_time,
        healthy_time=healthy.iteration_time)
    record_fault_stats(stats, mode.value)
    return dataclasses.replace(degraded, system=config.name,
                               faults=stats)


def _simulate_inference(config: SystemConfig, net: Network, batch: int,
                        strategy: ParallelStrategy) -> SimulationResult:
    """Forward-only batch with multi-tenant weight streaming.

    ``iteration_time`` is the end-to-end latency of serving one request
    batch on one device replica (data-parallel) or across the node
    (model-parallel).  ``offload_bytes_per_device`` reports the
    *one-way* weight bytes fetched from the backing store -- inference
    pushes nothing back.
    """
    with span("plan", mode="inference"):
        plan = plan_inference(net, config, batch, strategy)
    with span("price", mode="inference"):
        pricer = inference_pricer(plan, config)
        psched = plan_inference_prefetch(plan, config, pricer)
    with span("emit", mode="inference"):
        ops = build_inference_ops(plan, config, prefetch=psched,
                                  pricer=pricer)
    with span("schedule", mode="inference"):
        timeline = schedule_ops(ops)

    breakdown = LatencyBreakdown(
        compute=timeline.busy_time(EngineKind.COMPUTE),
        sync=timeline.busy_time(EngineKind.COMM),
        vmem=(timeline.busy_time(EngineKind.DMA_OUT)
              + timeline.busy_time(EngineKind.DMA_IN)))

    streamed = plan.weight_stream_bytes_per_device
    host_traffic = streamed if config.uses_host_memory else 0
    footprint = net.inference_footprint_bytes(batch)

    return SimulationResult(
        system=config.name,
        network=net.name,
        batch=batch,
        strategy=strategy,
        n_devices=config.n_devices,
        iteration_time=timeline.makespan,
        breakdown=breakdown,
        offload_bytes_per_device=streamed,
        sync_bytes=plan.sync_bytes_per_iteration,
        host_traffic_bytes_per_device=host_traffic,
        fits_in_device_memory=footprint <= config.device.memory_capacity,
        mode=ExecutionMode.INFERENCE,
        prefetch=collect_prefetch_stats(timeline, psched.policy,
                                        evictions=psched.evictions),
    )


def _simulate_pipeline(config: SystemConfig, net: Network,
                       batch: int) -> SimulationResult:
    """Pipeline-parallel path: stages are asymmetric, so the timeline
    spans every stage on its own engine channel."""
    # Imported lazily: repro.pipeline depends on repro.core.
    from repro.pipeline.lowering import (build_pipeline_ops,
                                         pipeline_pricer,
                                         pipeline_stats, plan_pipeline,
                                         plan_pipeline_prefetch)

    with span("plan", mode="pipeline"):
        plan = plan_pipeline(net, config, batch)
    with span("price", mode="pipeline"):
        pricer = pipeline_pricer(plan, config)
        psched = plan_pipeline_prefetch(plan, config, pricer)
    with span("emit", mode="pipeline"):
        ops = build_pipeline_ops(plan, config, prefetch=psched,
                                 pricer=pricer)
    with span("schedule", mode="pipeline"):
        timeline = schedule_ops(ops)
    stats = pipeline_stats(plan, timeline)

    breakdown = LatencyBreakdown(
        compute=timeline.busy_time(EngineKind.COMPUTE),
        sync=timeline.busy_time(EngineKind.COMM),
        vmem=(timeline.busy_time(EngineKind.DMA_OUT)
              + timeline.busy_time(EngineKind.DMA_IN)))

    offload = plan.offload_bytes_per_device
    host_traffic = 2 * offload if config.uses_host_memory else 0

    return SimulationResult(
        system=config.name,
        network=net.name,
        batch=batch,
        strategy=ParallelStrategy.PIPELINE,
        n_devices=config.n_devices,
        iteration_time=timeline.makespan,
        breakdown=breakdown,
        offload_bytes_per_device=offload,
        sync_bytes=plan.sync_bytes_per_iteration,
        host_traffic_bytes_per_device=host_traffic,
        fits_in_device_memory=(plan.max_stage_footprint_bytes
                               <= config.device.memory_capacity),
        pipeline=stats,
        prefetch=collect_prefetch_stats(
            timeline, config.prefetch_policy,
            evictions=sum(s.evictions for s in psched)),
    )


def iteration_timeline(config: SystemConfig, network: Network | str,
                       batch: int = DEFAULT_BATCH,
                       strategy: ParallelStrategy =
                       ParallelStrategy.DATA) -> Timeline:
    """The scheduled engine timeline of one iteration (trace export)."""
    net = _resolve(network)
    if strategy is ParallelStrategy.PIPELINE:
        from repro.pipeline.lowering import (build_pipeline_ops,
                                             plan_pipeline)
        plan = plan_pipeline(net, config, batch)
        return schedule_ops(build_pipeline_ops(plan, config))
    plan = plan_iteration(net, config, batch, strategy)
    return schedule_ops(build_iteration_ops(plan, config))


def host_bandwidth_usage(config: SystemConfig,
                         result: SimulationResult) -> CpuBandwidthUsage:
    """Per-socket CPU memory bandwidth usage (Figure 12)."""
    if config.host_socket is None:
        raise ValueError(f"{config.name} has no host socket configured")
    concurrent = (config.vmem.channel.concurrent_bw
                  if config.virtualizes else 0.0)
    return socket_usage(config.host_socket,
                        result.host_traffic_bytes_per_device,
                        result.iteration_time, concurrent)
