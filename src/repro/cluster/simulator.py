"""The cluster's discrete-event loop: jobs x devices x shared pool.

State advances between three event kinds -- job arrival, job
completion, and preemption-patience expiry.  Between events every
running job burns its remaining service at a piecewise-constant rate:
``1`` normally, slower when the pool is oversubscribed and its
overflow spills to the slow tier (:func:`repro.cluster.pool.
spill_dilation`).  At each event the scheduler settles progress,
releases finished jobs, admits arrivals, then repeatedly asks the
policy (:func:`repro.cluster.policies.select_next`) for the next job
to place until it declines.

Preemption (``preempt_after``) evicts the newest preemptible running
jobs to unblock a starved queue entry: each victim checkpoints its
optimizer state into the pool and restores it when rescheduled, both
priced as pool traffic on the design's virtualization channel and
folded into the victim's remaining service.

Everything is deterministic for a fixed seed: arrivals come from the
seeded job generator, service times from the memoized cost oracle,
and the loop itself draws no randomness -- two runs produce
byte-identical :class:`~repro.core.metrics.ClusterStats` JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.cluster.jobs import JobSpec, generate_jobs
from repro.cluster.oracle import CostOracle, JobProfile
from repro.cluster.policies import (QueueEntry, Release, fits,
                                    select_next)
from repro.cluster.pool import MemoryPool, spill_dilation, spill_penalty
from repro.core.metrics import (ClusterStats, ExecutionMode,
                                FaultStats, LatencyBreakdown,
                                SimulationResult, percentile)
from repro.core.system import SystemConfig
from repro.faults.lowering import (active_fault_model, degraded_config,
                                   healthy_config, record_fault_stats)
from repro.interconnect.link import PCIE_GEN3
from repro.training.parallel import ParallelStrategy
from repro.units import GB

DEFAULT_FLEET_DEVICES = 16
DEFAULT_JOBS = 24
DEFAULT_ARRIVAL_RATE = 0.02  # jobs/sec
#: Default shared-pool sizing when no explicit capacity is given.
DEFAULT_POOL_PER_DEVICE = 128 * GB
#: A job survives at most this many evictions, then becomes sticky.
MAX_PREEMPTIONS_PER_JOB = 2

_EPS = 1e-9


@dataclass
class _Pending:
    profile: JobProfile
    enqueued_at: float
    remaining: float
    preempted: int = 0
    #: Retry backoff after a fault-induced eviction: the policy layer
    #: skips this entry until the clock reaches it.
    eligible_at: float = 0.0


@dataclass
class _Running:
    profile: JobProfile
    remaining: float
    started: float
    preempted: int = 0
    dilation: float = 1.0


@dataclass
class _Ledger:
    """Integrals and counters folded into :class:`ClusterStats`."""

    busy_device_seconds: float = 0.0
    pool_util_seconds: float = 0.0
    pool_pressure_seconds: float = 0.0
    frag_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    checkpoint_bytes: int = 0
    preemptions: int = 0
    peak_reserved: int = 0
    #: Fault-injection accounting (all zero on healthy runs).
    fault_retries: int = 0
    fault_recovery_bytes: int = 0
    degraded_seconds: float = 0.0
    fault_events: int = 0
    finished: list = field(default_factory=list)  # (spec, first, end)
    first_dispatch: dict = field(default_factory=dict)
    #: Per-job lifecycle events, in occurrence order:
    #: ``(kind, jid, time)`` with kind one of ``arrive`` / ``start``
    #: / ``preempt`` / ``finish``.  Feeds the Chrome-trace exporter
    #: (:func:`repro.core.trace.cluster_chrome_trace`).
    events: list = field(default_factory=list)


def estimated_wall_seconds(remaining: float, profile: JobProfile,
                           pool: MemoryPool, penalty: float) -> float:
    """Wall-clock estimate of a pending job's runtime if started now.

    The base remaining service dilates by the spill overflow the job's
    own reservation would create on top of the pool's current load --
    so policies that reason about durations (SJF ordering, gang/EASY
    backfill windows) compare wall-clock against wall-clock, and a
    backfill candidate cannot sneak past the head gang's reservation
    by quoting its undilated runtime.
    """
    # Repeated preemption/restart accounting can leave float dust a
    # hair below zero in ``remaining``; clamp so duration-aware
    # policies (SJF ordering, backfill windows) never see a negative
    # estimate.
    remaining = max(0.0, remaining)
    projected = pool.reserved + profile.pool_bytes
    if projected <= 0:
        return remaining
    overflow = max(0, projected - pool.capacity) / projected
    return remaining * spill_dilation(profile, overflow, penalty)


def _checkpoint_time(config: SystemConfig, nbytes: int) -> float:
    """One checkpoint (or restore) DMA of a job's optimizer state."""
    if nbytes == 0:
        return 0.0
    if config.virtualizes:
        return config.vmem.transfer_time(nbytes)
    return nbytes / PCIE_GEN3.uni_bw


class ClusterSimulator:
    """One fleet + pool + policy, ready to run a job stream."""

    def __init__(self, config: SystemConfig, *, policy: str = "fifo",
                 fleet_devices: int = DEFAULT_FLEET_DEVICES,
                 pool_capacity: int | None = None,
                 oversubscription: float = 1.0,
                 preempt_after: float | None = None) -> None:
        if fleet_devices < config.n_devices:
            raise ValueError(
                f"fleet of {fleet_devices} devices cannot host a "
                f"{config.n_devices}-device node gang")
        if preempt_after is not None and preempt_after <= 0:
            raise ValueError("preempt_after must be positive")
        if pool_capacity is None:
            pool_capacity = fleet_devices * DEFAULT_POOL_PER_DEVICE
        self.config = config
        self.policy = policy
        self.fleet_devices = fleet_devices
        self.pool = MemoryPool(pool_capacity,
                               oversubscription=oversubscription)
        self.preempt_after = preempt_after
        # Fault injection: price jobs under the *standing* degradation
        # (derated links, stragglers); timed flap windows and the pool
        # failure are applied on the event-loop timeline so the same
        # fault is never billed twice.
        self._fault = active_fault_model(config)
        base = (degraded_config(config, include_flaps=False)
                if self._fault is not None else config)
        self._base = base
        self.oracle = CostOracle(base)
        self._penalty = spill_penalty(base)

    # -- Pricing --------------------------------------------------------------

    def _admissible(self, profile: JobProfile) -> JobProfile:
        if profile.devices > self.fleet_devices:
            raise ValueError(
                f"job {profile.spec.jid} needs {profile.devices} "
                f"devices; fleet has {self.fleet_devices}")
        if profile.pool_bytes > self.pool.limit:
            raise ValueError(
                f"job {profile.spec.jid} reserves "
                f"{profile.pool_bytes} pool bytes; limit is "
                f"{self.pool.limit} (raise oversubscription or "
                f"capacity)")
        return profile

    # -- The event loop -------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec]) -> tuple[_Ledger, float]:
        """Drive the job stream to completion; returns the ledger and
        the makespan."""
        if not jobs:
            raise ValueError("need at least one job")
        stream = sorted(jobs, key=lambda j: (j.arrival, j.jid))
        profiles = [self._admissible(self.oracle.profile(s))
                    for s in stream]

        t = 0.0
        index = 0
        pending: list[_Pending] = []
        running: list[_Running] = []
        free_devices = self.fleet_devices
        ledger = _Ledger()

        fault = self._fault
        flaps = fault is not None and fault.flaps
        loss_pending = fault is not None and fault.node_loss_fraction > 0
        loss_time = fault.node_loss_time if loss_pending else 0.0
        pool_lost = False

        def refresh_dilation() -> None:
            overflow = self.pool.overflow_fraction
            in_flap = flaps and fault.in_flap(t)
            for job in running:
                dil = spill_dilation(job.profile, overflow,
                                     self._penalty)
                if in_flap:
                    # Only the job's exposed migration share rides the
                    # flapping links; compute is unaffected.
                    dil *= 1.0 + (job.profile.vmem_share
                                  * job.profile.exposure
                                  * (1.0 / fault.link_degradation
                                     - 1.0))
                job.dilation = dil

        def advance(until: float) -> None:
            nonlocal t
            dt = until - t
            if dt < 0:
                raise AssertionError("time went backwards")
            if dt == 0:
                t = until
                return
            busy = sum(j.profile.devices for j in running)
            ledger.busy_device_seconds += busy * dt
            ledger.pool_util_seconds += self.pool.utilization * dt
            ledger.pool_pressure_seconds += self.pool.pressure * dt
            if pending:
                ledger.frag_seconds += \
                    (free_devices / self.fleet_devices) * dt
            if pool_lost or (flaps
                             and fault.in_flap(0.5 * (t + until))):
                ledger.degraded_seconds += dt
            for job in running:
                # Clamp: preemption overheads and float dust must not
                # drive remaining work negative (it skews
                # estimated_wall_seconds and SJF ordering).
                job.remaining = max(0.0,
                                    job.remaining - dt / job.dilation)
            t = until

        def start(entry: _Pending) -> None:
            nonlocal free_devices
            profile = entry.profile
            free_devices -= profile.devices
            self.pool.reserve(profile.pool_bytes)
            ledger.peak_reserved = max(ledger.peak_reserved,
                                       self.pool.reserved)
            jid = profile.spec.jid
            ledger.first_dispatch.setdefault(jid, t)
            ledger.events.append(("start", jid, t))
            running.append(_Running(profile=profile,
                                    remaining=entry.remaining,
                                    started=t,
                                    preempted=entry.preempted))
            refresh_dilation()

        def finish(job: _Running) -> None:
            nonlocal free_devices
            free_devices += job.profile.devices
            self.pool.release(job.profile.pool_bytes)
            spec = job.profile.spec
            ledger.finished.append(
                (spec, ledger.first_dispatch[spec.jid], t))
            ledger.events.append(("finish", spec.jid, t))
            refresh_dilation()

        def preempt(job: _Running, fault_evict: bool = False) -> None:
            nonlocal free_devices
            running.remove(job)
            free_devices += job.profile.devices
            self.pool.release(job.profile.pool_bytes)
            overhead = 2 * _checkpoint_time(self._base,
                                            job.profile.state_bytes)
            ledger.checkpoint_seconds += overhead
            ledger.checkpoint_bytes += 2 * job.profile.state_bytes
            ledger.preemptions += 1
            ledger.events.append(("preempt", job.profile.spec.jid, t))
            eligible_at = t
            if fault_evict:
                # Restore-and-retry with exponential backoff: the
                # checkpoint/restore traffic is billed through the
                # ordinary preemption ledger, and the retry waits out
                # the backoff before the policy may replace it.
                ledger.fault_retries += 1
                ledger.fault_recovery_bytes += \
                    2 * job.profile.state_bytes
                if fault.retry_backoff > 0:
                    eligible_at = t + fault.retry_backoff \
                        * (2.0 ** min(job.preempted, 6))
            pending.append(_Pending(profile=job.profile,
                                    enqueued_at=t,
                                    remaining=job.remaining + overhead,
                                    preempted=job.preempted + 1,
                                    eligible_at=eligible_at))
            refresh_dilation()

        def try_preempt_for(entry: _Pending) -> bool:
            """Evict newest preemptible jobs until ``entry`` fits."""
            victims = sorted(
                (j for j in running
                 if j.profile.preemptible
                 and j.preempted < MAX_PREEMPTIONS_PER_JOB),
                key=lambda j: (-j.started, -j.profile.spec.jid))
            devices = free_devices
            reserved = self.pool.reserved
            chosen = []
            need = entry.profile
            for victim in victims:
                if (devices >= need.devices
                        and reserved + need.pool_bytes
                        <= self.pool.limit):
                    break
                chosen.append(victim)
                devices += victim.profile.devices
                reserved -= victim.profile.pool_bytes
            if not (devices >= need.devices
                    and reserved + need.pool_bytes <= self.pool.limit):
                return False
            for victim in chosen:
                preempt(victim)
            return True

        def policy_pass() -> None:
            while True:
                # Entries backing off after a fault eviction are
                # invisible to the policy until their retry is due.
                eligible = [(i, p) for i, p in enumerate(pending)
                            if p.eligible_at <= t + _EPS]
                queue = [QueueEntry(p.profile,
                                    estimated_wall_seconds(
                                        p.remaining, p.profile,
                                        self.pool, self._penalty))
                         for _, p in eligible]
                releases = tuple(
                    Release(time=j.remaining * j.dilation,
                            devices=j.profile.devices,
                            pool_bytes=j.profile.pool_bytes)
                    for j in running)
                choice = select_next(self.policy, queue, free_devices,
                                     self.pool, releases)
                if choice is None:
                    return
                start(pending.pop(eligible[choice][0]))

        def schedule() -> None:
            """Alternate policy and preemption passes until stable."""
            while True:
                policy_pass()
                if self.preempt_after is None:
                    return
                progressed = False
                for entry in list(pending):
                    if entry.eligible_at > t + _EPS:
                        continue  # still backing off its retry
                    overdue = (t - entry.enqueued_at
                               >= self.preempt_after - _EPS)
                    if not overdue:
                        continue
                    if fits(QueueEntry(entry.profile, entry.remaining),
                            free_devices, self.pool):
                        continue  # next policy pass can place it
                    if try_preempt_for(entry):
                        pending.remove(entry)
                        start(entry)
                        progressed = True
                        break
                if not progressed:
                    return

        while index < len(stream) or pending or running:
            horizons = []
            if index < len(stream):
                horizons.append(stream[index].arrival)
            if running:
                horizons.append(t + min(j.remaining * j.dilation
                                        for j in running))
            if (self.preempt_after is not None and pending
                    and running):
                due = min(p.enqueued_at + self.preempt_after
                          for p in pending)
                if due > t:
                    horizons.append(due)
            if flaps:
                # Flap boundaries are events: dilations and the
                # degraded-time integral are piecewise-constant only
                # between them.
                horizons.append(fault.next_flap_boundary(t))
            if loss_pending:
                horizons.append(max(t, loss_time))
            backoffs = [p.eligible_at for p in pending
                        if p.eligible_at > t + _EPS]
            if backoffs:
                horizons.append(min(backoffs))
            if not horizons:
                raise AssertionError(
                    "deadlock: queued jobs but nothing running or "
                    "arriving")
            advance(max(t, min(horizons)))
            refresh_dilation()

            for job in [j for j in running
                        if j.remaining <= _EPS * (1.0 + j.profile.service)]:
                running.remove(job)
                finish(job)
            while (index < len(stream)
                   and stream[index].arrival <= t + _EPS):
                spec = stream[index]
                ledger.events.append(("arrive", spec.jid, spec.arrival))
                pending.append(_Pending(profile=profiles[index],
                                        enqueued_at=spec.arrival,
                                        remaining=profiles[index].service))
                index += 1
            if loss_pending and t >= loss_time - _EPS:
                # The pool node dies: capacity shrinks (floored so the
                # largest single job can still run -- the fleet would
                # otherwise wedge forever), and the newest jobs are
                # force-evicted until the survivors' reservations fit.
                loss_pending = False
                pool_lost = True
                floor_bytes = max(p.pool_bytes for p in profiles)
                floor_cap = math.ceil(
                    floor_bytes / self.pool.oversubscription)
                self.pool.capacity = max(
                    int(self.pool.capacity
                        * (1.0 - fault.node_loss_fraction)),
                    floor_cap)
                ledger.events.append(("fault", -1, t))
                ledger.fault_events += 1
                while self.pool.reserved > self.pool.limit and running:
                    victim = max(running,
                                 key=lambda j: (j.started,
                                                j.profile.spec.jid))
                    preempt(victim, fault_evict=True)
                refresh_dilation()
            schedule()

        return ledger, t


def fold_stats(ledger: _Ledger, makespan: float, *, policy: str,
               job_mix: str, fleet_devices: int,
               pool: MemoryPool) -> ClusterStats:
    """Fold a finished run's ledger into :class:`ClusterStats`."""
    finished = ledger.finished
    if not finished:
        raise ValueError("no finished jobs")
    jcts = sorted(end - spec.arrival for spec, _, end in finished)
    n = len(jcts)
    delays = [first - spec.arrival for spec, first, _ in finished]
    return ClusterStats(
        policy=policy,
        job_mix=job_mix,
        n_jobs=n,
        n_devices=fleet_devices,
        pool_capacity=pool.capacity,
        oversubscription=pool.oversubscription,
        makespan=makespan,
        throughput=n / makespan,
        jct_mean=sum(jcts) / n,
        jct_p50=percentile(jcts, 50),
        jct_p95=percentile(jcts, 95),
        queue_delay_mean=sum(delays) / n,
        device_utilization=min(1.0, ledger.busy_device_seconds
                               / (fleet_devices * makespan)),
        pool_utilization=min(1.0,
                             ledger.pool_util_seconds / makespan),
        pool_pressure=ledger.pool_pressure_seconds / makespan,
        fragmentation=min(1.0, ledger.frag_seconds / makespan),
        preemptions=ledger.preemptions,
        checkpoint_bytes=ledger.checkpoint_bytes,
    )


def _record_cluster(stats: ClusterStats, ledger: _Ledger) -> None:
    """Telemetry probe: per-policy event-loop counters, folded once
    after the run from the ledger (the loop itself is untouched)."""
    from repro.telemetry.registry import metrics_registry
    registry = metrics_registry()
    if registry is None:
        return
    labels = {"policy": stats.policy}
    registry.counter(
        "repro_cluster_jobs_total",
        "jobs completed by the cluster event loop",
        **labels).inc(stats.n_jobs)
    registry.counter(
        "repro_cluster_preemptions_total",
        "running jobs evicted to unblock a starved queue entry",
        **labels).inc(stats.preemptions)
    registry.counter(
        "repro_cluster_events_total",
        "job lifecycle events recorded",
        **labels).inc(len(ledger.events))


def simulate_cluster(config: SystemConfig, *, policy: str = "fifo",
                     job_mix: str = "balanced",
                     n_jobs: int = DEFAULT_JOBS, seed: int = 0,
                     arrival_rate: float = DEFAULT_ARRIVAL_RATE,
                     fleet_devices: int = DEFAULT_FLEET_DEVICES,
                     pool_capacity: int | None = None,
                     oversubscription: float = 1.0,
                     preempt_after: float | None = None,
                     jobs: Sequence[JobSpec] | None = None) \
        -> SimulationResult:
    """Run one complete cluster simulation on a design point.

    Returns a :class:`SimulationResult` in ``ExecutionMode.CLUSTER``
    whose ``cluster`` field carries the fleet statistics -- so cluster
    cells cache, replay, and render through the campaign machinery
    unchanged.  ``iteration_time`` holds the makespan; the breakdown's
    ``compute`` aggregates busy device-seconds and ``vmem`` the
    preemption checkpoint/restore traffic time.
    """
    if jobs is None:
        jobs = generate_jobs(job_mix, n_jobs, seed=seed,
                             arrival_rate=arrival_rate,
                             node_width=config.n_devices)
        mix_label = job_mix
    else:
        jobs = tuple(jobs)
        mix_label = f"explicit[{len(jobs)}]"
    sim = ClusterSimulator(config, policy=policy,
                           fleet_devices=fleet_devices,
                           pool_capacity=pool_capacity,
                           oversubscription=oversubscription,
                           preempt_after=preempt_after)
    from repro.telemetry.spans import span
    with span("cluster:run", policy=policy, jobs=len(jobs)):
        ledger, makespan = sim.run(jobs)
    stats = fold_stats(ledger, makespan, policy=policy,
                       job_mix=mix_label,
                       fleet_devices=sim.fleet_devices, pool=sim.pool)
    _record_cluster(stats, ledger)

    faults = None
    if sim._fault is not None:
        fault = sim._fault
        # The healthy twin replays the identical job stream with the
        # fault model stripped; its makespan anchors slowdown and
        # availability (delivered over nominal fleet capacity).
        healthy = ClusterSimulator(
            healthy_config(config), policy=policy,
            fleet_devices=fleet_devices, pool_capacity=pool_capacity,
            oversubscription=oversubscription,
            preempt_after=preempt_after)
        with span("faults", model=fault.name, mode="cluster"):
            _, healthy_makespan = healthy.run(jobs)
        injected = fault.flap_count_until(makespan) \
            + ledger.fault_events
        if fault.compute_multiplier > 1.0:
            injected += fault.straggler_devices
        standing = (fault.standing_multiplier < 1.0
                    or fault.compute_multiplier > 1.0)
        faults = FaultStats(
            model=fault.name,
            injected_events=injected,
            degraded_seconds=(makespan if standing
                              else min(makespan,
                                       ledger.degraded_seconds)),
            slowdown=makespan / healthy_makespan,
            retries=ledger.fault_retries,
            shed_requests=0,
            timed_out_requests=0,
            recovery_bytes=ledger.fault_recovery_bytes,
            availability=min(1.0, healthy_makespan / makespan),
        )
        record_fault_stats(faults, "cluster")

    return SimulationResult(
        system=config.name,
        network=f"mix:{mix_label}",
        batch=stats.n_jobs,
        strategy=ParallelStrategy.DATA,
        n_devices=sim.fleet_devices,
        iteration_time=makespan,
        breakdown=LatencyBreakdown(
            compute=ledger.busy_device_seconds,
            sync=0.0,
            vmem=ledger.checkpoint_seconds),
        offload_bytes_per_device=(ledger.peak_reserved
                                  // sim.fleet_devices),
        sync_bytes=0,
        host_traffic_bytes_per_device=0,
        fits_in_device_memory=ledger.peak_reserved == 0,
        mode=ExecutionMode.CLUSTER,
        cluster=stats,
        faults=faults,
    )
