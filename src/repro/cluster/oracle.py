"""The cluster's cost oracle: price jobs via the core simulator.

Scheduling policies need three numbers per job -- how many devices it
gangs, how long it holds them, and how much of the shared memory pool
it reserves -- and all three fall out of one ``simulate()`` (or
``simulate_serving()``) call on the target design point:

* **service**: a training job of width ``w`` runs the design's
  data-parallel iteration sliced onto ``w`` devices.  Work is
  conserved, so service = iterations x iteration_time x (node / w);
  pipeline gangs and serving tenants take the simulated time as-is.
* **pool reservation**: ``offload_bytes_per_device`` is exactly the
  per-device working set resident in the backing store (the vDNN
  activation stash for training, the streamed multi-tenant weights for
  serving), so a job reserves ``width x offload_bytes_per_device`` of
  the pool -- and nothing on designs that do not virtualize.
* **vmem share**: the fraction of engine-busy time spent on migration,
  which scales the slowdown a job suffers when the pool is
  oversubscribed and its overflow spills to a slower tier.

Each distinct job class is simulated once per oracle instance; a
cluster run prices in a handful of simulator invocations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.jobs import SERVING_REQUESTS, JobKind, JobSpec
from repro.core import pricing
from repro.core.metrics import SimulationResult
from repro.core.simulator import simulate
from repro.core.system import SystemConfig
from repro.dnn.registry import build_network
from repro.training.parallel import ParallelStrategy
from repro.vmem.prefetch import ON_DEMAND

#: Weights + two Adam-style optimizer moments: the state a preempted
#: job checkpoints into (and restores from) the pool.
OPTIMIZER_STATE_FACTOR = 3


def policy_exposure(result: SimulationResult) -> float:
    """Spill-exposure factor of one priced job, in [0, 1].

    The measured share of the job's migration time that actually
    blocked compute (``stall_seconds / vmem``).  The on-demand
    baseline -- and any result without prefetch accounting -- prices
    at the conservative 1.0, so legacy cluster numbers are unchanged
    byte-for-byte.
    """
    stats = result.prefetch
    if stats is None or stats.policy == ON_DEMAND:
        return 1.0
    vmem = result.breakdown.vmem
    if vmem <= 0.0:
        return 1.0
    return min(1.0, stats.stall_seconds / vmem)


@dataclass(frozen=True)
class JobProfile:
    """One job priced on one design point."""

    spec: JobSpec
    #: Gang width actually placed (TRAINING honours ``spec.width``;
    #: PIPELINE / SERVING gangs span the whole node).
    devices: int
    #: Base busy seconds on each gang device, before any spill
    #: dilation or preemption overheads.
    service: float
    #: Bytes reserved in the shared pool while the job runs.
    pool_bytes: int
    #: Checkpoint/restore footprint moved through the pool on
    #: preemption.
    state_bytes: int
    #: Migration share of the job's engine-busy time, in [0, 1].
    vmem_share: float
    #: Latency-critical tenants are never preempted.
    preemptible: bool
    #: Share of the job's migration its prefetch policy leaves on the
    #: critical path, in [0, 1]: spill dilation scales by it.  The
    #: legacy on-demand baseline prices at 1.0 (the paper's
    #: conservative worst case); policies that hide migration behind
    #: compute are proportionally less sensitive to spilling.
    exposure: float = 1.0

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("profile needs at least one device")
        if self.service <= 0:
            raise ValueError("service time must be positive")
        if min(self.pool_bytes, self.state_bytes) < 0:
            raise ValueError("byte accounting must be >= 0")
        if not 0.0 <= self.vmem_share <= 1.0:
            raise ValueError("vmem_share must lie in [0, 1]")
        if not 0.0 <= self.exposure <= 1.0:
            raise ValueError("exposure must lie in [0, 1]")


class CostOracle:
    """Memoized job pricing for one design point."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self._memo: dict[tuple, SimulationResult] = {}

    def _result(self, spec: JobSpec) -> SimulationResult:
        # Two memo tiers: the per-instance dict (the seed's behavior)
        # and the process-wide pricing memo, which shares one priced
        # job class across every oracle of the same design point --
        # each scheduling policy builds its own oracle, so without
        # sharing the comparison re-simulates every class per policy.
        if spec.kind is JobKind.SERVING:
            key = ("serving", spec.network, spec.batch, spec.rate,
                   spec.trace_seed)
            if key not in self._memo:
                def run() -> SimulationResult:
                    # Imported lazily: serving depends on repro.core.
                    from repro.serving.server import simulate_serving
                    return simulate_serving(
                        self.config, spec.network, rate=spec.rate,
                        n_requests=SERVING_REQUESTS,
                        seed=spec.trace_seed, max_batch=spec.batch)
                self._memo[key] = pricing.cached_cluster_cell(
                    self.config, key, run)
            return self._memo[key]
        strategy = (ParallelStrategy.PIPELINE
                    if spec.kind is JobKind.PIPELINE
                    else ParallelStrategy.DATA)
        key = (spec.kind.value, spec.network, spec.batch)
        if key not in self._memo:
            self._memo[key] = pricing.cached_cluster_cell(
                self.config, key,
                lambda: simulate(self.config, spec.network, spec.batch,
                                 strategy))
        return self._memo[key]

    def profile(self, spec: JobSpec) -> JobProfile:
        """Price one job on this oracle's design point."""
        result = self._result(spec)
        node = self.config.n_devices
        if spec.kind is JobKind.TRAINING:
            devices = min(spec.width, node)
            service = (spec.iterations * result.iteration_time
                       * (node / devices))
        elif spec.kind is JobKind.PIPELINE:
            devices = node
            service = spec.iterations * result.iteration_time
        else:
            devices = node
            service = result.serving.duration
        pool_bytes = devices * result.offload_bytes_per_device
        total = result.breakdown.total
        vmem_share = (result.breakdown.vmem / total if total > 0
                      else 0.0)
        if spec.kind is JobKind.SERVING:
            state_bytes = build_network(spec.network).weight_bytes()
        else:
            state_bytes = (OPTIMIZER_STATE_FACTOR
                           * build_network(spec.network).weight_bytes())
        return JobProfile(
            spec=spec, devices=devices, service=service,
            pool_bytes=pool_bytes, state_bytes=state_bytes,
            vmem_share=vmem_share,
            preemptible=spec.kind is not JobKind.SERVING,
            exposure=policy_exposure(result))
