"""The shared disaggregated memory pool: admission and spill pricing.

The fleet's devices all carve their backing store out of one pooled
capacity (the consolidated memory-node argument of Section III).  The
pool is fungible at this level -- placement inside a node is
:mod:`repro.vmem.allocator`'s job -- so admission control is pure
capacity accounting:

* a job may start only if its reservation fits under
  ``capacity x oversubscription``;
* reservations beyond the *physical* capacity are oversubscription:
  the overflow fraction of every resident working set spills to the
  slow tier (host DRAM over PCIe gen3 -- the device-centric baseline's
  own virtualization path), and running jobs dilate accordingly.

:func:`spill_dilation` prices that slowdown with the same vmem algebra
the simulator uses: a job whose migration share of busy time is ``v``
and whose pool channel is ``r`` times faster than the spill channel
runs ``1 + f * v * e * (r - 1)`` slower when a fraction ``f`` of the
pool has spilled -- where ``e`` is the job's *exposure*, the share of
its migration the active prefetch policy leaves on the critical path
(:data:`~repro.cluster.oracle.JobProfile.exposure`).  The legacy
``on-demand`` baseline prices at ``e = 1`` (the paper's conservative
worst case); smarter policies hide part of the spill-tier latency
behind compute and dilate proportionally less.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.oracle import JobProfile
from repro.core.system import SystemConfig
from repro.interconnect.link import PCIE_GEN3


@dataclass
class MemoryPool:
    """Capacity accounting for the fleet's shared pool."""

    capacity: int
    oversubscription: float = 1.0
    reserved: int = 0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("pool capacity must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        if self.reserved < 0:
            raise ValueError("negative reservation")

    @property
    def limit(self) -> int:
        """Admissible reservation ceiling (physical x oversub)."""
        return int(self.capacity * self.oversubscription)

    def fits(self, nbytes: int) -> bool:
        return self.reserved + nbytes <= self.limit

    def reserve(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative reservation")
        if not self.fits(nbytes):
            raise ValueError(
                f"pool overcommitted: {self.reserved} + {nbytes} "
                f"> limit {self.limit}")
        self.reserved += nbytes

    def release(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self.reserved:
            raise ValueError("releasing more than reserved")
        self.reserved -= nbytes

    @property
    def overflow_fraction(self) -> float:
        """Share of resident pages spilled past physical capacity."""
        if self.reserved <= self.capacity:
            return 0.0
        return (self.reserved - self.capacity) / self.reserved

    @property
    def utilization(self) -> float:
        """Physical occupancy in [0, 1] (overflow does not count)."""
        return min(self.reserved, self.capacity) / self.capacity

    @property
    def pressure(self) -> float:
        """Reservation over physical capacity; > 1 when oversubscribed."""
        return self.reserved / self.capacity


def spill_penalty(config: SystemConfig) -> float:
    """How much slower the spill tier is than the design's pool.

    ``peak_bw / spill_bw - 1``, floored at zero: the device-centric
    baseline already virtualizes over PCIe, so spilling costs it
    nothing extra, while the memory-centric designs fall off their
    fast links.  Designs that never virtualize have no spill path.
    """
    if not config.virtualizes:
        return 0.0
    return max(0.0, config.vmem.channel.peak_bw / PCIE_GEN3.uni_bw
               - 1.0)


def spill_dilation(profile: JobProfile, overflow_fraction: float,
                   penalty: float) -> float:
    """Service-rate dilation of one running job, >= 1.

    Only the job's migration share dilates; compute and collectives
    are unaffected by where cold pages live.  The prefetch policy the
    job was priced under scales the dilation through
    ``profile.exposure``: migration the policy already hides behind
    compute does not slow down further when its pages spill.
    """
    if not 0.0 <= overflow_fraction <= 1.0:
        raise ValueError("overflow fraction must lie in [0, 1]")
    if penalty < 0:
        raise ValueError("spill penalty must be >= 0")
    if profile.pool_bytes == 0:
        return 1.0
    return 1.0 + (overflow_fraction * profile.vmem_share
                  * profile.exposure * penalty)
