"""Cluster job specifications and seeded job-mix generation.

A :class:`JobSpec` is pure data -- what arrives at the cluster queue,
with no pricing attached.  The cost oracle (:mod:`repro.cluster.
oracle`) turns a spec into a :class:`~repro.cluster.oracle.JobProfile`
(gang width, service seconds, pool reservation) for a concrete design
point, so one job stream can be replayed identically across all six
designs -- the comparison the paper's pooling argument needs.

:func:`generate_jobs` materializes a named mix deterministically from
a seed: Poisson arrivals, workloads/widths/iteration counts drawn from
per-mix weight tables.  The same (mix, n_jobs, seed, rate) always
yields the same job stream, which is what makes cluster cells exactly
as cacheable as training cells in the campaign engine.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

#: Names accepted by :func:`generate_jobs` (and the campaign axis).
JOB_MIX_NAMES = ("training", "transformer", "serving", "balanced")

#: Serving tenants keep their traces short so one tenant occupies the
#: node for tens of seconds, not the whole makespan.
SERVING_REQUESTS = 96


class JobKind(enum.Enum):
    """What a queued job runs once placed."""

    TRAINING = "training"    # data-parallel iterations, width 1..node
    PIPELINE = "pipeline"    # gang-scheduled pipeline iterations
    SERVING = "serving"      # a latency-critical inference tenant


@dataclass(frozen=True)
class JobSpec:
    """One job as submitted to the cluster queue (pure data)."""

    jid: int
    arrival: float
    kind: JobKind
    network: str
    batch: int
    #: Training iterations (TRAINING / PIPELINE); ignored by SERVING.
    iterations: int = 1
    #: Requested device count.  PIPELINE and SERVING jobs are gangs
    #: sized by the oracle to the design's node width; TRAINING jobs
    #: honour this width (work conserved: fewer devices run longer).
    width: int = 1
    #: SERVING tenants: offered load and trace seed.
    rate: float = 0.0
    trace_seed: int = 0

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time must be non-negative")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.kind is JobKind.SERVING and self.rate <= 0:
            raise ValueError("serving tenants need a positive rate")


#: Per-mix draw tables: (kind, network, batch, iteration range, widths).
#: Batches are sized so pool residency spans 1 GB (AlexNet) to ~100 GB
#: per device (GPT2) -- the heterogeneity bin-packing policies exist
#: to exploit.
_TRAINING_DRAWS = (
    (JobKind.TRAINING, "AlexNet", 512, (30, 80), (1, 2, 4)),
    (JobKind.TRAINING, "GoogLeNet", 512, (20, 60), (2, 4)),
    (JobKind.TRAINING, "VGG-E", 512, (10, 40), (4, 8)),
    (JobKind.TRAINING, "ResNet", 512, (20, 60), (2, 4, 8)),
    (JobKind.TRAINING, "RNN-GRU", 512, (30, 80), (1, 2)),
)

_TRANSFORMER_DRAWS = (
    (JobKind.TRAINING, "GPT2", 256, (4, 12), (8,)),
    (JobKind.TRAINING, "BERT-Large", 128, (4, 12), (8,)),
    (JobKind.PIPELINE, "GPT2", 256, (8, 24), (8,)),
    (JobKind.PIPELINE, "BERT-Large", 128, (8, 24), (8,)),
)

_SERVING_DRAWS = (
    (JobKind.SERVING, "GPT2", 8, (1, 1), (8,)),
    (JobKind.SERVING, "BERT-Large", 8, (1, 1), (8,)),
)

_MIXES: dict[str, tuple] = {
    "training": _TRAINING_DRAWS,
    "transformer": _TRANSFORMER_DRAWS,
    "serving": _SERVING_DRAWS,
    "balanced": (_TRAINING_DRAWS + _TRANSFORMER_DRAWS
                 + _SERVING_DRAWS),
}

#: Serving tenants' offered-load ladder (req/s), drawn uniformly.
_SERVING_RATES = (100.0, 200.0, 400.0)


def generate_jobs(mix: str, n_jobs: int, seed: int = 0,
                  arrival_rate: float = 0.02,
                  node_width: int = 8) -> tuple[JobSpec, ...]:
    """A deterministic job stream for a named mix.

    ``arrival_rate`` is jobs/sec of a Poisson submission process;
    ``node_width`` caps every drawn width (gangs are sized to the
    design's node by the oracle, so the stream itself stays
    design-independent).
    """
    if mix not in _MIXES:
        raise KeyError(f"unknown job mix {mix!r}; "
                       f"known: {', '.join(JOB_MIX_NAMES)}")
    if n_jobs <= 0:
        raise ValueError("need at least one job")
    if arrival_rate <= 0:
        raise ValueError("arrival rate must be positive")
    if node_width < 1:
        raise ValueError("node width must be >= 1")
    draws = _MIXES[mix]
    rng = random.Random(seed)
    t = 0.0
    jobs = []
    for jid in range(n_jobs):
        t += rng.expovariate(arrival_rate)
        kind, network, batch, (lo, hi), widths = \
            draws[rng.randrange(len(draws))]
        width = min(rng.choice(widths), node_width)
        rate = 0.0
        if kind is JobKind.SERVING:
            rate = _SERVING_RATES[rng.randrange(len(_SERVING_RATES))]
        jobs.append(JobSpec(
            jid=jid, arrival=t, kind=kind, network=network,
            batch=batch, iterations=rng.randint(lo, hi), width=width,
            rate=rate, trace_seed=seed + jid))
    return tuple(jobs)
