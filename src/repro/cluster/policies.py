"""Pluggable placement/scheduling policies for the cluster queue.

A policy is a pure selection rule: given the pending queue (in
submission order), the free device count, and the pool's admission
state, pick the index of the next job to start -- or ``None`` to wait.
The simulator calls it repeatedly until it declines, so policies never
mutate state and stay trivially deterministic.

Four disciplines:

* ``fifo`` -- strict submission order; a blocked head blocks the queue
  (the honest baseline every scheduling paper compares against);
* ``sjf`` -- shortest service first among the jobs that fit, using the
  cost oracle's ``simulate()``-priced service time;
* ``pool-fit`` -- memory-pool-aware best-fit-decreasing: of the jobs
  that fit, start the one with the largest pool reservation, packing
  big working sets early so small jobs backfill the remainder;
* ``gang`` -- FIFO with EASY backfill for multi-device gangs: the head
  job reserves its earliest feasible start (projected from running
  jobs' release times), and later jobs may jump ahead only if they fit
  now *and* finish before that reservation, so wide pipeline gangs are
  never starved by a stream of narrow jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.cluster.oracle import JobProfile
from repro.cluster.pool import MemoryPool

POLICY_NAMES = ("fifo", "sjf", "pool-fit", "gang")


@dataclass(frozen=True)
class QueueEntry:
    """One pending job as the policy sees it."""

    profile: JobProfile
    #: Estimated wall-clock seconds to completion if started now (the
    #: simulator folds restore costs and spill dilation in, so SJF
    #: ordering and gang backfill windows compare wall-clock against
    #: wall-clock).
    remaining: float


@dataclass(frozen=True)
class Release:
    """A projected resource release (one running job ending),
    ``time`` seconds from now."""

    time: float
    devices: int
    pool_bytes: int


def fits(entry: QueueEntry, free_devices: int,
         pool: MemoryPool) -> bool:
    """Whether a pending job can start right now."""
    return (entry.profile.devices <= free_devices
            and pool.fits(entry.profile.pool_bytes))


def earliest_start(entry: QueueEntry, free_devices: int,
                   pool: MemoryPool,
                   releases: Sequence[Release]) -> float | None:
    """Projected earliest time ``entry`` fits, or ``None`` if not even
    draining every running job would make room."""
    devices = free_devices
    reserved = pool.reserved
    limit = pool.limit
    need = entry.profile
    if devices >= need.devices and reserved + need.pool_bytes <= limit:
        return 0.0
    for release in sorted(releases, key=lambda r: r.time):
        devices += release.devices
        reserved -= release.pool_bytes
        if (devices >= need.devices
                and reserved + need.pool_bytes <= limit):
            return release.time
    return None


def select_next(policy: str, queue: Sequence[QueueEntry],
                free_devices: int, pool: MemoryPool,
                releases: Sequence[Release] = ()) -> int | None:
    """The queue index the policy starts next, or ``None`` to wait."""
    if not queue:
        return None
    if policy == "fifo":
        return 0 if fits(queue[0], free_devices, pool) else None
    if policy == "sjf":
        fitting = [i for i, e in enumerate(queue)
                   if fits(e, free_devices, pool)]
        if not fitting:
            return None
        return min(fitting, key=lambda i: (queue[i].remaining, i))
    if policy == "pool-fit":
        fitting = [i for i, e in enumerate(queue)
                   if fits(e, free_devices, pool)]
        if not fitting:
            return None
        return min(fitting,
                   key=lambda i: (-queue[i].profile.pool_bytes, i))
    if policy == "gang":
        if fits(queue[0], free_devices, pool):
            return 0
        horizon = earliest_start(queue[0], free_devices, pool, releases)
        for index in range(1, len(queue)):
            entry = queue[index]
            if not fits(entry, free_devices, pool):
                continue
            if horizon is None or entry.remaining <= horizon:
                return index
        return None
    raise KeyError(f"unknown scheduling policy {policy!r}; "
                   f"known: {', '.join(POLICY_NAMES)}")
