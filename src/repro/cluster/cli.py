"""``python -m repro cluster``: one cluster simulation, interactively.

Examples::

    python -m repro cluster --design mc-hbm --policy sjf \\
        --job-mix balanced --jobs 24
    python -m repro cluster --design dc --policy pool-fit \\
        --pool-gb 1024 --pool-oversub 1.5 --format json
    python -m repro cluster --quick

Design points accept the same friendly aliases as ``serve`` (``dc``,
``mc-hbm``, ``oracle``); ``--quick`` runs a small smoke-sized fleet
for CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.cluster.jobs import JOB_MIX_NAMES
from repro.cluster.policies import POLICY_NAMES
from repro.cluster.simulator import (DEFAULT_ARRIVAL_RATE, DEFAULT_JOBS,
                                     simulate_cluster)
from repro.core.design_points import design_point
from repro.naming import resolve_design
from repro.telemetry.session import TelemetrySession, add_telemetry_argument
from repro.units import GB, fmt_bytes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="Schedule a seeded stream of heterogeneous jobs "
                    "(training, pipeline gangs, serving tenants) on a "
                    "device fleet sharing one disaggregated memory "
                    "pool; report JCT percentiles, queueing delay, "
                    "and pool utilization.")
    parser.add_argument("--design", default="MC-DLA(B)",
                        help="design point or alias (default: "
                             "MC-DLA(B); try mc-hbm, dc, oracle)")
    parser.add_argument("--policy", default="fifo",
                        choices=POLICY_NAMES,
                        help="scheduling policy (default: fifo)")
    parser.add_argument("--job-mix", default="balanced",
                        choices=JOB_MIX_NAMES,
                        help="job mix (default: balanced)")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help=f"jobs in the stream (default: "
                             f"{DEFAULT_JOBS})")
    parser.add_argument("--seed", type=int, default=0,
                        help="job-stream seed (default: 0)")
    parser.add_argument("--arrival-rate", type=float,
                        default=DEFAULT_ARRIVAL_RATE,
                        help="job submissions per second (default: "
                             f"{DEFAULT_ARRIVAL_RATE:g})")
    parser.add_argument("--fleet-devices", type=int, default=16,
                        help="devices in the fleet (default: 16)")
    parser.add_argument("--pool-gb", type=float, default=None,
                        help="shared pool capacity in GiB (default: "
                             "128 GiB per device)")
    parser.add_argument("--pool-oversub", type=float, default=1.0,
                        help="pool oversubscription factor >= 1 "
                             "(default: 1.0; overflow spills to the "
                             "slow tier)")
    parser.add_argument("--preempt-after", type=float, default=None,
                        help="preempt to unblock jobs queued longer "
                             "than this many seconds (default: off)")
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (8 jobs, 1 node) for CI")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")
    add_telemetry_argument(parser)
    return parser


def format_stats(design: str, result) -> str:
    """Human-readable report of one cluster run."""
    c = result.cluster
    lines = [
        f"cluster on {design}: {c.policy} over {c.n_devices} devices, "
        f"{c.job_mix} mix, pool {fmt_bytes(c.pool_capacity)} "
        f"x{c.oversubscription:g}",
        f"  jobs             {c.n_jobs} over {c.makespan:.1f}s "
        f"makespan ({c.throughput * 3600:.1f} jobs/hour)",
        f"  JCT              mean {c.jct_mean:.1f}s | "
        f"p50 {c.jct_p50:.1f}s | p95 {c.jct_p95:.1f}s",
        f"  queueing         mean wait {c.queue_delay_mean:.1f}s "
        f"({c.queueing_share * 100:.1f}% of mean JCT)",
        f"  utilization      devices {c.device_utilization * 100:.1f}% "
        f"| pool {c.pool_utilization * 100:.1f}% "
        f"(pressure {c.pool_pressure:.2f}x)",
        f"  fragmentation    {c.fragmentation * 100:.1f}% of "
        f"device-time idle while jobs waited",
        f"  preemption       {c.preemptions} evictions, "
        f"{fmt_bytes(c.checkpoint_bytes)} checkpoint traffic",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        design = resolve_design(args.design)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    n_jobs = args.jobs
    fleet = args.fleet_devices
    if args.quick:
        n_jobs, fleet = 8, 8

    config = design_point(design)
    pool_capacity = (int(args.pool_gb * GB)
                     if args.pool_gb is not None else None)
    session = TelemetrySession(
        tool="cluster",
        argv=list(argv) if argv is not None else sys.argv[1:],
        enabled=args.telemetry, seed=args.seed,
        config={"design": design, "policy": args.policy,
                "job_mix": args.job_mix, "n_jobs": n_jobs,
                "arrival_rate": args.arrival_rate,
                "fleet_devices": fleet,
                "pool_capacity": pool_capacity,
                "oversubscription": args.pool_oversub,
                "preempt_after": args.preempt_after})
    try:
        with session:
            result = simulate_cluster(
                config, policy=args.policy, job_mix=args.job_mix,
                n_jobs=n_jobs, seed=args.seed,
                arrival_rate=args.arrival_rate, fleet_devices=fleet,
                pool_capacity=pool_capacity,
                oversubscription=args.pool_oversub,
                preempt_after=args.preempt_after)
    except (KeyError, ValueError) as exc:
        print(exc.args[0] if exc.args else str(exc), file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_stats(design, result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
