"""Multi-job cluster scheduling over a shared disaggregated pool.

The paper argues memory-centric pooling pays off when *many*
accelerators share capacity; every other harness in this repo runs one
job at a time.  This package closes that gap with a deterministic,
seeded discrete-event cluster simulator: a fleet of devices shares one
MC-DLA memory pool while a queue of heterogeneous jobs -- training
runs, pipeline gangs, and serving tenants -- arrives over time.

* :mod:`repro.cluster.jobs` -- job specs and seeded job-mix streams;
* :mod:`repro.cluster.oracle` -- prices each job's gang width, service
  time, and pool reservation with one ``simulate()`` call;
* :mod:`repro.cluster.pool` -- pool admission control,
  oversubscription, and spill-slowdown pricing;
* :mod:`repro.cluster.policies` -- FIFO, SJF, memory-pool-aware
  best-fit, and gang scheduling with EASY backfill;
* :mod:`repro.cluster.simulator` -- the event loop (arrivals,
  completions, preemption with checkpoint/restore as pool traffic)
  folding into :class:`repro.core.metrics.ClusterStats`;
* :mod:`repro.cluster.cli` -- ``python -m repro cluster``.

Campaigns sweep cluster cells through
:func:`repro.campaign.cluster_grid`, and
``experiments/cluster_comparison.py`` compares policies across all six
designs at equal pool capacity.
"""

from repro.cluster.jobs import (JOB_MIX_NAMES, JobKind, JobSpec,
                                generate_jobs)
from repro.cluster.oracle import CostOracle, JobProfile
from repro.cluster.policies import (POLICY_NAMES, QueueEntry, Release,
                                    earliest_start, fits, select_next)
from repro.cluster.pool import MemoryPool, spill_dilation, spill_penalty
from repro.cluster.simulator import (DEFAULT_ARRIVAL_RATE,
                                     DEFAULT_FLEET_DEVICES,
                                     DEFAULT_JOBS,
                                     DEFAULT_POOL_PER_DEVICE,
                                     ClusterSimulator, simulate_cluster)

__all__ = [
    "CostOracle", "ClusterSimulator", "DEFAULT_ARRIVAL_RATE",
    "DEFAULT_FLEET_DEVICES", "DEFAULT_JOBS", "DEFAULT_POOL_PER_DEVICE",
    "JOB_MIX_NAMES", "JobKind", "JobProfile", "JobSpec", "MemoryPool",
    "POLICY_NAMES", "QueueEntry", "Release", "earliest_start", "fits",
    "generate_jobs", "select_next", "simulate_cluster",
    "spill_dilation", "spill_penalty",
]
