"""Figure 9: collective latency vs number of nodes in the ring.

Latency of broadcast / all-gather / all-reduce on rings of 2..36 nodes,
normalized to the 2-node ring, with 50 GB/s bi-directional links, 4 KB
message granularity, and an 8 MB target synchronization size.  The
paper's headline: the 16-node MC-DLA ring costs ~7% over the 8-node
DC-DLA ring for all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.ring_algorithm import (DEFAULT_SPEC, CollectiveSpec,
                                              Primitive, collective_time)
from repro.experiments.report import format_series, percent
from repro.units import GBPS, MB

RING_SIZES = tuple(range(2, 37, 2))
LINK_BW = 50 * GBPS
SYNC_BYTES = 8 * MB


@dataclass(frozen=True)
class Fig9Result:
    sizes: tuple[int, ...]
    #: primitive -> latency series normalized to the 2-node ring.
    normalized: dict[Primitive, tuple[float, ...]]
    #: primitive -> absolute latency series (seconds).
    absolute: dict[Primitive, tuple[float, ...]]

    def at(self, primitive: Primitive, n_nodes: int) -> float:
        return self.normalized[primitive][self.sizes.index(n_nodes)]

    @property
    def mc_dla_overhead(self) -> float:
        """All-reduce penalty of 16 ring nodes vs 8 (paper: ~7%)."""
        return self.at(Primitive.ALL_REDUCE, 16) \
            / self.at(Primitive.ALL_REDUCE, 8) - 1.0


def run_fig9(sync_bytes: int = SYNC_BYTES, link_bw: float = LINK_BW,
             spec: CollectiveSpec = DEFAULT_SPEC) -> Fig9Result:
    normalized: dict[Primitive, tuple[float, ...]] = {}
    absolute: dict[Primitive, tuple[float, ...]] = {}
    for primitive in Primitive:
        series = [collective_time(primitive, n, sync_bytes, link_bw, spec)
                  for n in RING_SIZES]
        base = series[0]
        absolute[primitive] = tuple(series)
        normalized[primitive] = tuple(t / base for t in series)
    return Fig9Result(sizes=RING_SIZES, normalized=normalized,
                      absolute=absolute)


def format_fig9(result: Fig9Result) -> str:
    lines = ["Figure 9: collective latency vs ring size "
             "(normalized to 2 nodes)"]
    for primitive in Primitive:
        lines.append(format_series(primitive.value, result.sizes,
                                   result.normalized[primitive]))
    lines.append(
        f"MC-DLA(16) vs DC-DLA(8) all-reduce overhead: "
        f"{percent(result.mc_dla_overhead)} (paper: ~7%)")
    return "\n".join(lines)
