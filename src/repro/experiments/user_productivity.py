"""Section V-E: user productivity -- what MC-DLA makes trainable.

Sweeps the video-understanding workload's sequence length (frames per
clip) and reports each configuration's training footprint against the
memory available per device under DC-DLA (16 GB of HBM) and MC-DLA
(HBM + 1.25 TB of pooled memory-node capacity), plus the iteration time
on both designs for the configurations that each can train at all
(DC-DLA *can* virtualize over PCIe -- at its cost; without
virtualization the workload is simply untrainable).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_points import dc_dla, mc_dla_bw
from repro.core.simulator import simulate
from repro.dnn.models.video import VideoSpec, build_video_net
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import GB

FRAME_SWEEP = (4, 8, 16, 32)


@dataclass(frozen=True)
class ProductivityPoint:
    frames: int
    footprint_bytes: int
    fits_device_memory: bool
    fits_memory_pool: bool
    dc_iteration: float
    mc_iteration: float

    @property
    def speedup(self) -> float:
        return self.dc_iteration / self.mc_iteration


@dataclass(frozen=True)
class ProductivityResult:
    batch: int
    points: tuple[ProductivityPoint, ...]

    @property
    def max_frames_in_hbm(self) -> int:
        fitting = [p.frames for p in self.points
                   if p.fits_device_memory]
        return max(fitting) if fitting else 0

    @property
    def max_frames_in_pool(self) -> int:
        fitting = [p.frames for p in self.points if p.fits_memory_pool]
        return max(fitting) if fitting else 0


def run_user_productivity(batch: int = 64) -> ProductivityResult:
    dc = dc_dla()
    mc = mc_dla_bw()
    pool = mc.device.memory_capacity + mc.memory_node.capacity
    points = []
    for frames in FRAME_SWEEP:
        net = build_video_net(VideoSpec(frames=frames))
        footprint = net.training_footprint_bytes(batch)
        dc_result = simulate(dc, net, batch, ParallelStrategy.DATA)
        mc_result = simulate(mc, net, batch, ParallelStrategy.DATA)
        points.append(ProductivityPoint(
            frames=frames,
            footprint_bytes=footprint,
            fits_device_memory=footprint
            <= dc.device.memory_capacity,
            fits_memory_pool=footprint <= pool,
            dc_iteration=dc_result.iteration_time,
            mc_iteration=mc_result.iteration_time))
    return ProductivityResult(batch=batch, points=tuple(points))


def format_user_productivity(result: ProductivityResult) -> str:
    rows = []
    for p in result.points:
        rows.append([p.frames, f"{p.footprint_bytes / GB:.1f} GB",
                     "yes" if p.fits_device_memory else "NO",
                     "yes" if p.fits_memory_pool else "NO",
                     p.dc_iteration, p.mc_iteration,
                     f"{p.speedup:.2f}x"])
    table = format_table(
        ["frames", "footprint", "fits 16GB HBM", "fits MC pool",
         "DC-DLA (s)", "MC-DLA(B) (s)", "speedup"],
        rows,
        title=f"Section V-E: end-to-end video training "
              f"(batch {result.batch})")
    return (f"{table}\n"
            f"Longest clip trainable without virtualization: "
            f"{result.max_frames_in_hbm or 'none'} frames; within the "
            f"MC-DLA pool: {result.max_frames_in_pool} frames")
