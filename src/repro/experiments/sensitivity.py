"""Section V-B sensitivity studies.

Four variations on the baseline comparison:

* **PCIe gen4** doubles DC-DLA's host link (paper: DC-DLA +38%, the
  MC-DLA gap narrows from 2.8x to 2.1x);
* **TPUv2-class devices** make every design compute-faster, so the
  migration wall bites harder (paper: MC-DLA gap widens to 3.2x);
* **DGX-2-class nodes** (16 devices, NVLINK2-rate links) scale the node
  up (paper: 2.9x);
* **cDMA compression** shrinks DC-DLA's CNN migration traffic by 2.6x
  (paper: the CNN gap narrows to 2.3x).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.generations import TPUV2
from repro.core.design_points import dc_dla, mc_dla_bw
from repro.core.simulator import simulate
from repro.core.system import SystemConfig
from repro.dnn.registry import BENCHMARK_NAMES, CNN_NAMES
from repro.experiments.report import format_table
from repro.interconnect.link import NVLINK2, PCIE_GEN4
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

CDMA_COMPRESSION = 2.6


@dataclass(frozen=True)
class SensitivityStudy:
    name: str
    paper_gap: float          # MC-DLA(B)/DC-DLA the paper reports
    measured_gap: float
    networks: tuple[str, ...]
    note: str = ""


@dataclass(frozen=True)
class SensitivityResult:
    studies: tuple[SensitivityStudy, ...]
    dc_gen4_improvement: float   # DC-DLA gen4 over gen3 (paper: +38%)

    def study(self, name: str) -> SensitivityStudy:
        for s in self.studies:
            if s.name == name:
                return s
        raise KeyError(name)


def _gap(dc: SystemConfig, mc: SystemConfig, networks: tuple[str, ...],
         batch: int) -> float:
    speedups = []
    for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
        for network in networks:
            base = simulate(dc, network, batch, strategy)
            ours = simulate(mc, network, batch, strategy)
            speedups.append(ours.speedup_over(base))
    return harmonic_mean(speedups)


def run_sensitivity(batch: int = 512) -> SensitivityResult:
    baseline_gap = _gap(dc_dla(), mc_dla_bw(), BENCHMARK_NAMES, batch)

    gen4_gap = _gap(dc_dla(pcie=PCIE_GEN4), mc_dla_bw(),
                    BENCHMARK_NAMES, batch)
    tpu_gap = _gap(dc_dla(device=TPUV2), mc_dla_bw(device=TPUV2),
                   BENCHMARK_NAMES, batch)
    dgx2_gap = _gap(dc_dla(n_devices=16, link=NVLINK2),
                    mc_dla_bw(n_devices=16, link=NVLINK2),
                    BENCHMARK_NAMES, batch)
    cdma_gap = _gap(dc_dla(compression=CDMA_COMPRESSION), mc_dla_bw(),
                    CNN_NAMES, batch)

    # DC-DLA's own improvement from gen4 (averaged across the grid).
    improvements = []
    for strategy in (ParallelStrategy.DATA, ParallelStrategy.MODEL):
        for network in BENCHMARK_NAMES:
            gen3 = simulate(dc_dla(), network, batch, strategy)
            gen4 = simulate(dc_dla(pcie=PCIE_GEN4), network, batch,
                            strategy)
            improvements.append(gen4.speedup_over(gen3))
    dc_gen4 = harmonic_mean(improvements) - 1.0

    studies = (
        SensitivityStudy("baseline", 2.8, baseline_gap, BENCHMARK_NAMES),
        SensitivityStudy("pcie-gen4", 2.1, gen4_gap, BENCHMARK_NAMES,
                         "DC-DLA with PCIe gen4"),
        SensitivityStudy("tpuv2-device", 3.2, tpu_gap, BENCHMARK_NAMES,
                         "TPUv2-class device-nodes everywhere"),
        SensitivityStudy("dgx2-node", 2.9, dgx2_gap, BENCHMARK_NAMES,
                         "16 devices, NVLINK2-rate links"),
        SensitivityStudy("cdma-compression", 2.3, cdma_gap, CNN_NAMES,
                         f"{CDMA_COMPRESSION}x CNN traffic compression"),
    )
    return SensitivityResult(studies=studies, dc_gen4_improvement=dc_gen4)


def format_sensitivity(result: SensitivityResult) -> str:
    rows = [[s.name, f"{s.measured_gap:.2f}x", f"{s.paper_gap:.1f}x",
             s.note]
            for s in result.studies]
    table = format_table(
        ["study", "MC-DLA(B)/DC-DLA", "paper", "notes"], rows,
        title="Section V-B sensitivity studies")
    return (f"{table}\n"
            f"DC-DLA improvement from PCIe gen4: "
            f"{result.dc_gen4_improvement * 100:.0f}% (paper: 38%)")
