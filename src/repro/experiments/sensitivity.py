"""Section V-B sensitivity studies.

Four variations on the baseline comparison:

* **PCIe gen4** doubles DC-DLA's host link (paper: DC-DLA +38%, the
  MC-DLA gap narrows from 2.8x to 2.1x);
* **TPUv2-class devices** make every design compute-faster, so the
  migration wall bites harder (paper: MC-DLA gap widens to 3.2x);
* **DGX-2-class nodes** (16 devices, NVLINK2-rate links) scale the node
  up (paper: 2.9x);
* **cDMA compression** shrinks DC-DLA's CNN migration traffic by 2.6x
  (paper: the CNN gap narrows to 2.3x).

The whole section is one declarative campaign: every (variant,
workload, strategy) cell becomes a :class:`CampaignPoint` and shared
cells (e.g. the unmodified MC-DLA(B) grid) are simulated once instead
of once per study.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.generations import TPUV2
from repro.campaign import CampaignPoint, ResultCache, run_campaign
from repro.campaign.points import Overrides
from repro.campaign.runner import CampaignReport
from repro.dnn.registry import BENCHMARK_NAMES, CNN_NAMES
from repro.experiments.report import format_table
from repro.interconnect.link import NVLINK2, PCIE_GEN4
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

CDMA_COMPRESSION = 2.6

_STRATEGIES = (ParallelStrategy.DATA, ParallelStrategy.MODEL)

#: label -> (design factory, factory overrides, networks to sweep).
_VARIANTS: dict[str, tuple[str, Overrides, tuple[str, ...]]] = {
    "dc": ("DC-DLA", (), BENCHMARK_NAMES),
    "dc/gen4": ("DC-DLA", (("pcie", PCIE_GEN4),), BENCHMARK_NAMES),
    "dc/tpuv2": ("DC-DLA", (("device", TPUV2),), BENCHMARK_NAMES),
    "dc/dgx2": ("DC-DLA", (("n_devices", 16), ("link", NVLINK2)),
                BENCHMARK_NAMES),
    "dc/cdma": ("DC-DLA", (("compression", CDMA_COMPRESSION),),
                CNN_NAMES),
    "mc": ("MC-DLA(B)", (), BENCHMARK_NAMES),
    "mc/tpuv2": ("MC-DLA(B)", (("device", TPUV2),), BENCHMARK_NAMES),
    "mc/dgx2": ("MC-DLA(B)", (("n_devices", 16), ("link", NVLINK2)),
                BENCHMARK_NAMES),
}


@dataclass(frozen=True)
class SensitivityStudy:
    name: str
    paper_gap: float          # MC-DLA(B)/DC-DLA the paper reports
    measured_gap: float
    networks: tuple[str, ...]
    note: str = ""


@dataclass(frozen=True)
class SensitivityResult:
    studies: tuple[SensitivityStudy, ...]
    dc_gen4_improvement: float   # DC-DLA gen4 over gen3 (paper: +38%)

    def study(self, name: str) -> SensitivityStudy:
        for s in self.studies:
            if s.name == name:
                return s
        raise KeyError(name)


def sensitivity_points(batch: int = 512) -> tuple[CampaignPoint, ...]:
    """Every cell Section V-B needs, as one deduplicated grid."""
    points = []
    for label, (design, overrides, networks) in _VARIANTS.items():
        for strategy in _STRATEGIES:
            for network in networks:
                points.append(CampaignPoint(
                    design=design, network=network, batch=batch,
                    strategy=strategy, overrides=overrides,
                    label=label))
    return tuple(points)


def _gap(report: CampaignReport, dc_label: str, mc_label: str,
         networks: tuple[str, ...], batch: int) -> float:
    speedups = []
    for strategy in _STRATEGIES:
        for network in networks:
            base = report.result(dc_label, network, batch, strategy)
            ours = report.result(mc_label, network, batch, strategy)
            speedups.append(ours.speedup_over(base))
    return harmonic_mean(speedups)


def run_sensitivity(batch: int = 512, jobs: int = 1,
                    cache: ResultCache | None = None) \
        -> SensitivityResult:
    report = run_campaign(sensitivity_points(batch), jobs=jobs,
                          cache=cache).raise_failures()

    baseline_gap = _gap(report, "dc", "mc", BENCHMARK_NAMES, batch)
    gen4_gap = _gap(report, "dc/gen4", "mc", BENCHMARK_NAMES, batch)
    tpu_gap = _gap(report, "dc/tpuv2", "mc/tpuv2", BENCHMARK_NAMES,
                   batch)
    dgx2_gap = _gap(report, "dc/dgx2", "mc/dgx2", BENCHMARK_NAMES,
                    batch)
    cdma_gap = _gap(report, "dc/cdma", "mc", CNN_NAMES, batch)

    # DC-DLA's own improvement from gen4 (averaged across the grid).
    improvements = []
    for strategy in _STRATEGIES:
        for network in BENCHMARK_NAMES:
            gen3 = report.result("dc", network, batch, strategy)
            gen4 = report.result("dc/gen4", network, batch, strategy)
            improvements.append(gen4.speedup_over(gen3))
    dc_gen4 = harmonic_mean(improvements) - 1.0

    studies = (
        SensitivityStudy("baseline", 2.8, baseline_gap, BENCHMARK_NAMES),
        SensitivityStudy("pcie-gen4", 2.1, gen4_gap, BENCHMARK_NAMES,
                         "DC-DLA with PCIe gen4"),
        SensitivityStudy("tpuv2-device", 3.2, tpu_gap, BENCHMARK_NAMES,
                         "TPUv2-class device-nodes everywhere"),
        SensitivityStudy("dgx2-node", 2.9, dgx2_gap, BENCHMARK_NAMES,
                         "16 devices, NVLINK2-rate links"),
        SensitivityStudy("cdma-compression", 2.3, cdma_gap, CNN_NAMES,
                         f"{CDMA_COMPRESSION}x CNN traffic compression"),
    )
    return SensitivityResult(studies=studies, dc_gen4_improvement=dc_gen4)


def format_sensitivity(result: SensitivityResult) -> str:
    rows = [[s.name, f"{s.measured_gap:.2f}x", f"{s.paper_gap:.1f}x",
             s.note]
            for s in result.studies]
    table = format_table(
        ["study", "MC-DLA(B)/DC-DLA", "paper", "notes"], rows,
        title="Section V-B sensitivity studies")
    return (f"{table}\n"
            f"DC-DLA improvement from PCIe gen4: "
            f"{result.dc_gen4_improvement * 100:.0f}% (paper: 38%)")
