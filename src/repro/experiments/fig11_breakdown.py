"""Figure 11: latency breakdown (compute / sync / virtualization).

For every design point and workload, the three raw latency components,
normalized per workload to the tallest stacked bar -- exactly the
paper's presentation for (a) data-parallel and (b) model-parallel
training.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import LatencyBreakdown
from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.matrix import EvaluationMatrix, evaluation_matrix
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean


@dataclass(frozen=True)
class Fig11Result:
    strategy: ParallelStrategy
    #: (network, design) -> breakdown normalized to the workload's
    #: tallest stack.
    bars: dict[tuple[str, str], LatencyBreakdown]
    raw: dict[tuple[str, str], LatencyBreakdown]

    def bar(self, network: str, design: str) -> LatencyBreakdown:
        return self.bars[(network, design)]

    def hc_dla_vmem_reduction(self) -> float:
        """HC-DLA's average reduction of virtualization latency vs
        DC-DLA (paper: ~88%)."""
        ratios = []
        for network in BENCHMARK_NAMES:
            dc = self.raw[(network, "DC-DLA")].vmem
            hc = self.raw[(network, "HC-DLA")].vmem
            if dc > 0:
                ratios.append(hc / dc)
        return 1.0 - harmonic_mean(ratios)

    def hc_dla_sync_increase(self) -> float:
        """HC-DLA's average synchronization increase (paper: ~90%)."""
        ratios = []
        for network in BENCHMARK_NAMES:
            dc = self.raw[(network, "DC-DLA")].sync
            hc = self.raw[(network, "HC-DLA")].sync
            if dc > 0:
                ratios.append(hc / dc)
        return harmonic_mean(ratios) - 1.0

    def vmem_bound_count(self, design: str = "DC-DLA") -> int:
        """Workloads where virtualization dominates compute+sync."""
        count = 0
        for network in BENCHMARK_NAMES:
            raw = self.raw[(network, design)]
            if raw.vmem > raw.compute + raw.sync:
                count += 1
        return count


def run_fig11(strategy: ParallelStrategy,
              matrix: EvaluationMatrix | None = None) -> Fig11Result:
    matrix = matrix or evaluation_matrix()
    raw: dict[tuple[str, str], LatencyBreakdown] = {}
    for network in BENCHMARK_NAMES:
        for design in DESIGN_ORDER:
            raw[(network, design)] = matrix.result(
                design, network, strategy).breakdown
    bars = {}
    for network in BENCHMARK_NAMES:
        tallest = max(raw[(network, d)].total for d in DESIGN_ORDER)
        for design in DESIGN_ORDER:
            bars[(network, design)] = \
                raw[(network, design)].normalized_to(tallest)
    return Fig11Result(strategy=strategy, bars=bars, raw=raw)


def format_fig11(result: Fig11Result) -> str:
    rows = []
    for network in BENCHMARK_NAMES:
        for design in DESIGN_ORDER:
            bar = result.bar(network, design)
            rows.append([network, design, bar.compute, bar.sync,
                         bar.vmem, bar.total])
    label = "(a) data-parallel" \
        if result.strategy is ParallelStrategy.DATA \
        else "(b) model-parallel"
    table = format_table(
        ["network", "design", "compute", "sync", "virtualization",
         "stack"],
        rows, title=f"Figure 11{label}: normalized latency breakdown")
    return (f"{table}\n"
            f"HC-DLA vmem reduction vs DC-DLA: "
            f"{result.hc_dla_vmem_reduction() * 100:.0f}% (paper: 88%)\n"
            f"HC-DLA sync increase vs DC-DLA: "
            f"{result.hc_dla_sync_increase() * 100:.0f}% (paper: 90%)")
