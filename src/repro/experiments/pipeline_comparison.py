"""Pipeline-parallel comparison study (post-paper extension).

For the transformer workload family, compares every design point under
six parallelization variants -- data-parallel, model-parallel, and
pipeline-parallel with the GPipe fill-drain, 1F1B, ZB-H1 zero-bubble,
and interleaved virtual-stage schedules -- reporting iteration time,
pipeline bubble fraction, and per-device virtualization traffic.  Two
headlines: fill-drain's ``M``-deep activation stash pays a migration
round-trip that 1F1B mostly avoids, and the gap between the two
schedules *shrinks* as the memory system gets closer to the devices --
the paper's memory-centric argument, replayed on workloads from the
transformer era; on top of that, splitting backward into B/W ops lets
ZB-H1 fill 1F1B's steady-state bubbles with deferred weight-grad work
at the same activation-stash bound.

Runs entirely through the campaign engine, so cells fan out across
worker processes and replay from the shared disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ResultCache, grid, pipeline_grid, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import SimulationResult
from repro.dnn.registry import TRANSFORMER_NAMES
from repro.experiments.report import format_table, percent
from repro.training.parallel import ParallelStrategy

#: Presentation order of the strategy variants.
VARIANTS = ("data", "model", "pipeline/gpipe", "pipeline/1f1b",
            "pipeline/zb-h1", "pipeline/interleaved")

#: Pipeline schedules the study sweeps (presentation order).
SCHEDULES = ("gpipe", "1f1b", "zb-h1", "interleaved")

DEFAULT_BATCH = 512
DEFAULT_MICROBATCHES = 8


@dataclass(frozen=True)
class PipelineComparison:
    """All (network, design, variant) cells of the study."""

    batch: int
    microbatches: int
    #: (network, design, variant) -> result.
    results: dict[tuple[str, str, str], SimulationResult]

    def result(self, network: str, design: str,
               variant: str) -> SimulationResult:
        return self.results[(network, design, variant)]

    def schedule_gap(self, network: str, design: str) -> float:
        """GPipe's bubble-time excess over 1F1B (seconds, per stage
        aggregate) -- the cost of the fill-drain activation stash."""
        gpipe = self.result(network, design, "pipeline/gpipe")
        one_f = self.result(network, design, "pipeline/1f1b")
        return gpipe.pipeline.bubble_time - one_f.pipeline.bubble_time

    def zero_bubble_gap(self, network: str, design: str) -> float:
        """1F1B's bubble-time excess over ZB-H1 (seconds) -- what
        filling the steady-state bubbles with deferred W work buys."""
        one_f = self.result(network, design, "pipeline/1f1b")
        zb = self.result(network, design, "pipeline/zb-h1")
        return one_f.pipeline.bubble_time - zb.pipeline.bubble_time

    def best_variant(self, network: str, design: str) -> str:
        """The variant with the highest throughput on a cell."""
        return min(VARIANTS, key=lambda v: self.result(
            network, design, v).iteration_time)


def comparison_points(batch: int = DEFAULT_BATCH,
                      microbatches: int = DEFAULT_MICROBATCHES):
    """The study's campaign cells (data/model plus both schedules)."""
    flat = grid(DESIGN_ORDER, TRANSFORMER_NAMES, (batch,),
                (ParallelStrategy.DATA, ParallelStrategy.MODEL))
    piped = pipeline_grid(DESIGN_ORDER, TRANSFORMER_NAMES, (batch,),
                          schedules=SCHEDULES,
                          microbatches=microbatches)
    return flat + piped


def run_pipeline_comparison(
        batch: int = DEFAULT_BATCH,
        microbatches: int = DEFAULT_MICROBATCHES,
        jobs: int = 1,
        cache: ResultCache | None = None) -> PipelineComparison:
    """Run the study through the campaign engine."""
    if cache is None:
        cache = ResultCache.from_env()
    report = run_campaign(comparison_points(batch, microbatches),
                          jobs=jobs, cache=cache).raise_failures()

    results: dict[tuple[str, str, str], SimulationResult] = {}
    for outcome in report.outcomes:
        point = outcome.point
        if point.strategy is ParallelStrategy.DATA:
            variant = "data"
        elif point.strategy is ParallelStrategy.MODEL:
            variant = "model"
        else:
            variant = "pipeline/" + point.name.split("|", 1)[1]
        results[(point.network, point.design, variant)] = outcome.result
    return PipelineComparison(batch=batch, microbatches=microbatches,
                              results=results)


def format_pipeline_comparison(study: PipelineComparison) -> str:
    """Render one table per transformer workload."""
    blocks = []
    for network in TRANSFORMER_NAMES:
        rows = []
        for design in DESIGN_ORDER:
            for variant in VARIANTS:
                result = study.result(network, design, variant)
                bubble = (percent(result.pipeline.bubble_fraction)
                          if result.pipeline is not None else "--")
                rows.append([
                    design, variant,
                    result.iteration_time * 1e3,
                    result.throughput,
                    bubble,
                    result.round_trip_bytes_per_device / 1e9,
                ])
        table = format_table(
            ["design", "strategy", "iter (ms)", "samples/s", "bubble",
             "vmem GB/dev"],
            rows,
            title=(f"{network} @ batch {study.batch} "
                   f"({study.microbatches} microbatches)"))
        gaps = ", ".join(
            f"{design}: {study.schedule_gap(network, design) * 1e3:.1f}ms"
            for design in DESIGN_ORDER)
        zb_gaps = ", ".join(
            f"{design}: "
            f"{study.zero_bubble_gap(network, design) * 1e3:.1f}ms"
            for design in DESIGN_ORDER)
        blocks.append(f"{table}\n1F1B bubble savings over fill-drain "
                      f"({network}): {gaps}\nZB-H1 bubble savings over "
                      f"1F1B ({network}): {zb_gaps}")
    return "\n\n".join(blocks)
