"""Experiment harness: one module per paper table/figure."""

from repro.experiments.fig2_motivation import (Fig2Result, format_fig2,
                                               run_fig2)
from repro.experiments.fig9_collectives import (Fig9Result, format_fig9,
                                                run_fig9)
from repro.experiments.fig10_allocation import (Fig10Result, format_fig10,
                                                run_fig10)
from repro.experiments.fig11_breakdown import (Fig11Result, format_fig11,
                                               run_fig11)
from repro.experiments.fig12_cpu_bandwidth import (Fig12Result,
                                                   format_fig12, run_fig12)
from repro.experiments.fig13_performance import (Fig13Result, format_fig13,
                                                 run_fig13)
from repro.experiments.fig14_batch_sensitivity import (Fig14Result,
                                                       format_fig14,
                                                       run_fig14)
from repro.experiments.ablations import (AblationResult, format_ablations,
                                         run_ablations)
from repro.experiments.matrix import EvaluationMatrix, evaluation_matrix
from repro.experiments.scalability import (ScalabilityResult,
                                           format_scalability,
                                           run_scalability)
from repro.experiments.scaleout import (ScaleOutResult, format_scaleout,
                                        run_scaleout)
from repro.experiments.sensitivity import (SensitivityResult,
                                           format_sensitivity,
                                           run_sensitivity)
from repro.experiments.tab4_power import Tab4Result, format_tab4, run_tab4
from repro.experiments.user_productivity import (
    ProductivityResult, format_user_productivity, run_user_productivity)

__all__ = [
    "AblationResult", "EvaluationMatrix", "Fig10Result", "Fig11Result",
    "Fig12Result", "Fig13Result", "Fig14Result", "Fig2Result",
    "Fig9Result", "ProductivityResult", "ScalabilityResult",
    "ScaleOutResult", "SensitivityResult", "Tab4Result",
    "evaluation_matrix", "format_ablations", "format_fig10",
    "format_fig11", "format_fig12", "format_fig13", "format_fig14",
    "format_fig2", "format_fig9", "format_scalability",
    "format_scaleout", "format_sensitivity", "format_tab4",
    "format_user_productivity", "run_ablations", "run_fig10",
    "run_fig11", "run_fig12", "run_fig13", "run_fig14", "run_fig2",
    "run_fig9", "run_scalability", "run_scaleout", "run_sensitivity",
    "run_tab4", "run_user_productivity",
]
