"""Figure 14: MC-DLA(B) speedup sensitivity to the input batch size.

MC-DLA(B) over DC-DLA for batch sizes 128 / 256 / 1024 / 2048, per
workload and per strategy, with harmonic means.  The paper reports an
average 2.17x across all batch sizes, demonstrating robustness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.matrix import (STRATEGIES, evaluation_matrix)
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

BATCH_SIZES = (128, 256, 1024, 2048)


@dataclass(frozen=True)
class Fig14Result:
    batches: tuple[int, ...]
    #: (batch, strategy, network) -> MC-DLA(B)/DC-DLA speedup.
    speedups: dict[tuple[int, ParallelStrategy, str], float]

    def speedup(self, batch: int, strategy: ParallelStrategy,
                network: str) -> float:
        return self.speedups[(batch, strategy, network)]

    def batch_mean(self, batch: int,
                   strategy: ParallelStrategy | None = None) -> float:
        values = [v for (b, s, _), v in self.speedups.items()
                  if b == batch and (strategy is None or s is strategy)]
        return harmonic_mean(values)

    @property
    def overall_mean(self) -> float:
        """Across every batch size and strategy (paper: 2.17x)."""
        return harmonic_mean(list(self.speedups.values()))


def run_fig14(batches: tuple[int, ...] = BATCH_SIZES) -> Fig14Result:
    speedups = {}
    for batch in batches:
        matrix = evaluation_matrix(batch)
        for strategy in STRATEGIES:
            for network in BENCHMARK_NAMES:
                speedups[(batch, strategy, network)] = matrix.speedup(
                    "MC-DLA(B)", network, strategy)
    return Fig14Result(batches=tuple(batches), speedups=speedups)


def format_fig14(result: Fig14Result) -> str:
    rows = []
    for batch in result.batches:
        for network in BENCHMARK_NAMES:
            rows.append([
                batch, network,
                result.speedup(batch, ParallelStrategy.DATA, network),
                result.speedup(batch, ParallelStrategy.MODEL, network),
            ])
        rows.append([batch, "HarMean",
                     result.batch_mean(batch, ParallelStrategy.DATA),
                     result.batch_mean(batch, ParallelStrategy.MODEL)])
    table = format_table(
        ["batch", "network", "data-parallel", "model-parallel"], rows,
        title="Figure 14: MC-DLA(B) speedup over DC-DLA vs batch size")
    return (f"{table}\n"
            f"Average across all batch sizes: "
            f"{result.overall_mean:.2f}x (paper: 2.17x)")
