"""Figure 10: LOCAL vs BW_AWARE page-allocation latency.

The BW_AWARE policy splits each remote allocation across the left and
right memory-nodes, reading both concurrently: its migration latency is
exactly half of LOCAL's for every allocation size.  This experiment
sweeps allocation sizes through the driver model and verifies the
algebra end to end (placement included).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.report import format_table
from repro.units import GBPS, MB
from repro.vmem.allocator import (PlacementPolicy, RemoteAllocator,
                                  transfer_latency)
from repro.vmem.driver import Tier, default_layout

SIZES_MB = (64, 256, 1024, 4096)
N_LINKS = 6
LINK_BW = 25 * GBPS


@dataclass(frozen=True)
class Fig10Point:
    size_bytes: int
    latency_local: float
    latency_bw_aware: float
    #: page imbalance of BW_AWARE placement (pages on left - right).
    placement_skew: int

    @property
    def speedup(self) -> float:
        return self.latency_local / self.latency_bw_aware


@dataclass(frozen=True)
class Fig10Result:
    points: tuple[Fig10Point, ...]


def run_fig10(sizes_mb: tuple[int, ...] = SIZES_MB) -> Fig10Result:
    points = []
    for size_mb in sizes_mb:
        nbytes = size_mb * MB
        local = transfer_latency(nbytes, PlacementPolicy.LOCAL,
                                 N_LINKS, LINK_BW)
        aware = transfer_latency(nbytes, PlacementPolicy.BW_AWARE,
                                 N_LINKS, LINK_BW)
        allocator = RemoteAllocator(default_layout(),
                                    PlacementPolicy.BW_AWARE)
        mappings = allocator.allocate(nbytes)
        left = sum(1 for m in mappings if m.tier is Tier.REMOTE_LEFT)
        right = sum(1 for m in mappings if m.tier is Tier.REMOTE_RIGHT)
        points.append(Fig10Point(nbytes, local, aware, left - right))
    return Fig10Result(points=tuple(points))


def format_fig10(result: Fig10Result) -> str:
    rows = [[p.size_bytes // MB, p.latency_local * 1e3,
             p.latency_bw_aware * 1e3, f"{p.speedup:.2f}x",
             p.placement_skew]
            for p in result.points]
    return format_table(
        ["alloc (MiB)", "LOCAL (ms)", "BW_AWARE (ms)", "speedup",
         "page skew"],
        rows,
        title="Figure 10: LOCAL vs BW_AWARE allocation-policy latency")
