"""Section V-D: performance scalability across device counts.

Data-parallel CNN training on 1/4/8 devices, three configurations:

* DC-DLA with virtualization disabled -- near-perfect scaling (the
  paper's observation for memory-optimized workloads);
* DC-DLA with virtualization and DGX-style shared PCIe uplinks -- the
  host-device bottleneck erodes scaling (paper: 1.3x / 2.7x at 4 / 8
  devices);
* MC-DLA(B) -- scaling regained because migration rides the device-side
  interconnect.

The sweep is one declarative campaign grid; each (configuration,
device-count) variant is a labelled point over the stock factories.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignPoint, ResultCache, run_campaign
from repro.campaign.points import Overrides
from repro.dnn.registry import CNN_NAMES
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

DEVICE_COUNTS = (1, 4, 8)

_CONFIGURATIONS = ("DC-DLA (no virtualization)", "DC-DLA (virtualized)",
                   "MC-DLA(B)")


@dataclass(frozen=True)
class ScalingPoint:
    configuration: str
    network: str
    n_devices: int
    node_throughput: float   # samples/sec across the node

    def scaling_vs(self, single: "ScalingPoint") -> float:
        return self.node_throughput / single.node_throughput


@dataclass(frozen=True)
class ScalabilityResult:
    points: tuple[ScalingPoint, ...]

    def point(self, configuration: str, network: str,
              n_devices: int) -> ScalingPoint:
        for p in self.points:
            if (p.configuration, p.network, p.n_devices) == \
                    (configuration, network, n_devices):
                return p
        raise KeyError((configuration, network, n_devices))

    def mean_scaling(self, configuration: str, n_devices: int) -> float:
        factors = []
        for network in CNN_NAMES:
            single = self.point(configuration, network, 1)
            multi = self.point(configuration, network, n_devices)
            factors.append(multi.scaling_vs(single))
        return harmonic_mean(factors)


def _variant(configuration: str, n: int) -> tuple[str, Overrides]:
    """(design factory, overrides) for one configuration at ``n``."""
    if configuration == "DC-DLA (no virtualization)":
        return "DC-DLA(O)", (("n_devices", n),)
    if configuration == "DC-DLA (virtualized)":
        return "DC-DLA", (("n_devices", n), ("shared_uplinks", True))
    # MC-DLA needs two devices to form a ring; the single-"device" case
    # reuses a 2-node build but counts one device's share.
    return "MC-DLA(B)", (("n_devices", max(2, n)),)


def scalability_points(batch: int = 512) -> tuple[CampaignPoint, ...]:
    points = []
    for n in DEVICE_COUNTS:
        for configuration in _CONFIGURATIONS:
            design, overrides = _variant(configuration, n)
            for network in CNN_NAMES:
                points.append(CampaignPoint(
                    design=design, network=network, batch=batch,
                    strategy=ParallelStrategy.DATA,
                    overrides=overrides,
                    label=f"{configuration}/n={n}"))
    return tuple(points)


def run_scalability(batch: int = 512, jobs: int = 1,
                    cache: ResultCache | None = None) \
        -> ScalabilityResult:
    report = run_campaign(scalability_points(batch), jobs=jobs,
                          cache=cache).raise_failures()
    points = []
    for n in DEVICE_COUNTS:
        for configuration in _CONFIGURATIONS:
            for network in CNN_NAMES:
                result = report.result(f"{configuration}/n={n}",
                                       network, batch,
                                       ParallelStrategy.DATA)
                # Weak scaling: node throughput is devices x per-device
                # throughput.
                per_device = result.batch / result.iteration_time
                points.append(ScalingPoint(
                    configuration, network, n, per_device * n))
    return ScalabilityResult(points=tuple(points))


def format_scalability(result: ScalabilityResult) -> str:
    rows = []
    for configuration in _CONFIGURATIONS:
        for n in DEVICE_COUNTS[1:]:
            rows.append([configuration, n,
                         f"{result.mean_scaling(configuration, n):.2f}x"])
    table = format_table(
        ["configuration", "devices", "throughput scaling"],
        rows, title="Section V-D: data-parallel CNN scalability")
    return (f"{table}\n"
            f"Paper: no-virtualization scales ~4x/8x; virtualized "
            f"DC-DLA reaches only 1.3x/2.7x; MC-DLA regains scaling")
