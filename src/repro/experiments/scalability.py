"""Section V-D: performance scalability across device counts.

Data-parallel CNN training on 1/4/8 devices, three configurations:

* DC-DLA with virtualization disabled -- near-perfect scaling (the
  paper's observation for memory-optimized workloads);
* DC-DLA with virtualization and DGX-style shared PCIe uplinks -- the
  host-device bottleneck erodes scaling (paper: 1.3x / 2.7x at 4 / 8
  devices);
* MC-DLA(B) -- scaling regained because migration rides the device-side
  interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_points import dc_dla, dc_dla_oracle, mc_dla_bw
from repro.core.simulator import simulate
from repro.core.system import SystemConfig
from repro.dnn.registry import CNN_NAMES
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

DEVICE_COUNTS = (1, 4, 8)


@dataclass(frozen=True)
class ScalingPoint:
    configuration: str
    network: str
    n_devices: int
    node_throughput: float   # samples/sec across the node

    def scaling_vs(self, single: "ScalingPoint") -> float:
        return self.node_throughput / single.node_throughput


@dataclass(frozen=True)
class ScalabilityResult:
    points: tuple[ScalingPoint, ...]

    def point(self, configuration: str, network: str,
              n_devices: int) -> ScalingPoint:
        for p in self.points:
            if (p.configuration, p.network, p.n_devices) == \
                    (configuration, network, n_devices):
                return p
        raise KeyError((configuration, network, n_devices))

    def mean_scaling(self, configuration: str, n_devices: int) -> float:
        factors = []
        for network in CNN_NAMES:
            single = self.point(configuration, network, 1)
            multi = self.point(configuration, network, n_devices)
            factors.append(multi.scaling_vs(single))
        return harmonic_mean(factors)


def _configs(n: int) -> dict[str, SystemConfig]:
    return {
        "DC-DLA (no virtualization)": dc_dla_oracle(n_devices=n),
        "DC-DLA (virtualized)": dc_dla(n_devices=n, shared_uplinks=True),
        "MC-DLA(B)": (mc_dla_bw(n_devices=max(2, n)) if n > 1
                      else mc_dla_bw(n_devices=2)),
    }


def run_scalability(batch: int = 512) -> ScalabilityResult:
    points = []
    for n in DEVICE_COUNTS:
        for label, config in _configs(n).items():
            effective_devices = n
            for network in CNN_NAMES:
                result = simulate(config, network, batch,
                                  ParallelStrategy.DATA)
                # Weak scaling: node throughput is devices x per-device
                # throughput.  The MC-DLA single-"device" case reuses a
                # 2-node build but counts one device's share.
                per_device = result.batch / result.iteration_time
                points.append(ScalingPoint(
                    label, network, n, per_device * effective_devices))
    return ScalabilityResult(points=tuple(points))


def format_scalability(result: ScalabilityResult) -> str:
    rows = []
    for configuration in ("DC-DLA (no virtualization)",
                          "DC-DLA (virtualized)", "MC-DLA(B)"):
        for n in DEVICE_COUNTS[1:]:
            rows.append([configuration, n,
                         f"{result.mean_scaling(configuration, n):.2f}x"])
    table = format_table(
        ["configuration", "devices", "throughput scaling"],
        rows, title="Section V-D: data-parallel CNN scalability")
    return (f"{table}\n"
            f"Paper: no-virtualization scales ~4x/8x; virtualized "
            f"DC-DLA reaches only 1.3x/2.7x; MC-DLA regains scaling")
