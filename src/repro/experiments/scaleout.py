"""Section VI: scale-out MC-DLA over an NVSwitch-class plane (Fig. 15).

Sweeps the number of 8-device/8-memory-node system nodes attached to a
switched device-side plane and reports: switch count, all-reduce latency
across the whole plane, per-device virtualization bandwidth, and the
pooled memory capacity -- the feasibility sketch the paper leaves as
future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.ring_algorithm import Primitive
from repro.collectives.multi_ring import striped_collective_time
from repro.experiments.report import format_table
from repro.interconnect.switch import ScaleOutPlane, datacenter_plane
from repro.memnode.memory_node import MemoryNodeSpec
from repro.units import GBPS, MB, TB

NODE_SWEEP = (1, 2, 4, 8, 16)
SYNC_BYTES = 64 * MB


@dataclass(frozen=True)
class ScaleOutPoint:
    system_nodes: int
    plane: ScaleOutPlane
    allreduce_latency: float
    vmem_bw_per_device: float
    pooled_capacity: int


@dataclass(frozen=True)
class ScaleOutResult:
    points: tuple[ScaleOutPoint, ...]

    def point(self, system_nodes: int) -> ScaleOutPoint:
        for p in self.points:
            if p.system_nodes == system_nodes:
                return p
        raise KeyError(system_nodes)


def run_scaleout(sync_bytes: int = SYNC_BYTES) -> ScaleOutResult:
    node = MemoryNodeSpec()
    points = []
    for count in NODE_SWEEP:
        plane = datacenter_plane(count)
        latency = striped_collective_time(
            Primitive.ALL_REDUCE, plane.ring_channels(), sync_bytes,
            plane.collective_spec())
        points.append(ScaleOutPoint(
            system_nodes=count,
            plane=plane,
            allreduce_latency=latency,
            vmem_bw_per_device=plane.vmem_bandwidth_per_device(),
            pooled_capacity=plane.pooled_capacity(node.capacity)))
    return ScaleOutResult(points=tuple(points))


def format_scaleout(result: ScaleOutResult) -> str:
    rows = []
    for p in result.points:
        rows.append([
            p.system_nodes, p.plane.n_devices,
            p.plane.switches_needed,
            p.allreduce_latency * 1e3,
            p.vmem_bw_per_device / GBPS,
            f"{p.pooled_capacity / TB:.1f} TB",
        ])
    return format_table(
        ["sys-nodes", "devices", "switches", "allreduce (ms)",
         "vmem GB/s", "memory pool"],
        rows,
        title="Section VI: scale-out MC-DLA plane (64 MB all-reduce)")
