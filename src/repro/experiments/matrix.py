"""The shared evaluation matrix: 6 designs x 8 workloads x 2 strategies.

Figures 11, 12, and 13 all read from this grid; running it once and
caching keeps the benchmark harness fast and the numbers consistent
across figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.design_points import DESIGN_ORDER, design_point
from repro.core.metrics import SimulationResult
from repro.core.simulator import simulate
from repro.dnn.registry import BENCHMARK_NAMES
from repro.training.parallel import ParallelStrategy

STRATEGIES = (ParallelStrategy.DATA, ParallelStrategy.MODEL)


@dataclass(frozen=True)
class EvaluationMatrix:
    """All (design, workload, strategy) simulation results."""

    batch: int
    results: dict[tuple[str, str, ParallelStrategy], SimulationResult]

    def result(self, design: str, network: str,
               strategy: ParallelStrategy) -> SimulationResult:
        return self.results[(design, network, strategy)]

    def speedup(self, design: str, network: str,
                strategy: ParallelStrategy,
                baseline: str = "DC-DLA") -> float:
        return self.result(design, network, strategy).speedup_over(
            self.result(baseline, network, strategy))

    def performance(self, design: str, network: str,
                    strategy: ParallelStrategy,
                    reference: str = "DC-DLA(O)") -> float:
        """Throughput normalized to the oracle (Figure 13's y-axis)."""
        return self.result(design, network, strategy).performance_vs(
            self.result(reference, network, strategy))


@lru_cache(maxsize=4)
def evaluation_matrix(batch: int = 512) -> EvaluationMatrix:
    """Run (and cache) the full grid at a batch size."""
    results = {}
    configs = {name: design_point(name) for name in DESIGN_ORDER}
    for strategy in STRATEGIES:
        for network in BENCHMARK_NAMES:
            for design, config in configs.items():
                results[(design, network, strategy)] = simulate(
                    config, network, batch, strategy)
    return EvaluationMatrix(batch=batch, results=results)
