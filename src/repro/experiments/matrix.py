"""The shared evaluation matrix: 6 designs x 8 workloads x 2 strategies.

Figures 11, 12, and 13 all read from this grid.  It is a declarative
campaign over :mod:`repro.campaign`: cells fan out across a process
pool when ``jobs > 1``, replay from the on-disk result cache when one
is configured (``$REPRO_CACHE_DIR`` or an explicit ``cache_dir``), and
an ``lru_cache`` keeps the built matrix identical-by-identity within a
process so every figure reports consistent numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.campaign import CampaignPoint, ResultCache, grid, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import SimulationResult
from repro.dnn.registry import BENCHMARK_NAMES
from repro.training.parallel import ParallelStrategy

STRATEGIES = (ParallelStrategy.DATA, ParallelStrategy.MODEL)


@dataclass(frozen=True)
class EvaluationMatrix:
    """All (design, workload, strategy) simulation results."""

    batch: int
    results: dict[tuple[str, str, ParallelStrategy], SimulationResult]

    def result(self, design: str, network: str,
               strategy: ParallelStrategy) -> SimulationResult:
        return self.results[(design, network, strategy)]

    def speedup(self, design: str, network: str,
                strategy: ParallelStrategy,
                baseline: str = "DC-DLA") -> float:
        return self.result(design, network, strategy).speedup_over(
            self.result(baseline, network, strategy))

    def performance(self, design: str, network: str,
                    strategy: ParallelStrategy,
                    reference: str = "DC-DLA(O)") -> float:
        """Throughput normalized to the oracle (Figure 13's y-axis)."""
        return self.result(design, network, strategy).performance_vs(
            self.result(reference, network, strategy))


def evaluation_points(batch: int = 512) -> tuple[CampaignPoint, ...]:
    """The paper's full evaluation grid as campaign points."""
    return grid(DESIGN_ORDER, BENCHMARK_NAMES, (batch,), STRATEGIES)


def compute_evaluation_matrix(
        batch: int = 512, jobs: int = 1,
        cache: ResultCache | None = None) -> EvaluationMatrix:
    """Run the full grid through the campaign engine (no memoization)."""
    report = run_campaign(evaluation_points(batch), jobs=jobs,
                          cache=cache).raise_failures()
    results = {(o.point.design, o.point.network, o.point.strategy):
               o.result for o in report.outcomes}
    return EvaluationMatrix(batch=batch, results=results)


@lru_cache(maxsize=4)
def evaluation_matrix(batch: int = 512, jobs: int = 1,
                      cache_dir: str | None = None) -> EvaluationMatrix:
    """Run (and cache) the full grid at a batch size.

    ``cache_dir`` points the disk cache somewhere explicit; when
    ``None``, ``$REPRO_CACHE_DIR`` is honoured if set and the campaign
    otherwise runs uncached (exactly the seed behaviour).
    """
    cache = (ResultCache(cache_dir) if cache_dir is not None
             else ResultCache.from_env())
    return compute_evaluation_matrix(batch, jobs=jobs, cache=cache)
