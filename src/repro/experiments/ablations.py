"""Ablation studies on the design choices DESIGN.md calls out.

Four ablations, each isolating one modeling/design decision:

* **offload window** -- vDNN's pinned-buffer depth (how many offloads
  may be in flight before forward compute stalls);
* **recompute rule** -- migrating cheap-layer outputs instead of
  recomputing them (footnote 4's optimization);
* **shared PCIe uplinks** -- DGX-1-style switch sharing vs dedicated
  per-device PCIe (the baseline's generosity);
* **interconnect shape** -- Figure 7(a) derivative vs 7(b) folded vs
  7(c) ring at identical hardware budgets.

All but the recompute rule are declarative campaign grids (the window
depth rides on ``CampaignPoint.replacements``, the 7(a) derivative on
a custom design factory); the recompute ablation rebuilds iteration
plans by hand because the knob lives on the migration-policy side,
below ``simulate()``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import CampaignPoint, ResultCache, run_campaign
from repro.campaign.runner import CampaignReport
from repro.core.design_points import design_point, mc_dla_star
from repro.core.system import CollectiveModel, SystemConfig, VmemModel
from repro.experiments.report import format_table
from repro.interconnect.builders import build_fig7a_derivative
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean

ABLATION_NETWORKS = ("VGG-E", "RNN-GRU")

_WINDOWS = (1, 2, 4, 8)


@dataclass(frozen=True)
class AblationRow:
    study: str
    variant: str
    mean_iteration_time: float

    def slowdown_vs(self, base: "AblationRow") -> float:
        return self.mean_iteration_time / base.mean_iteration_time


@dataclass(frozen=True)
class AblationResult:
    rows: tuple[AblationRow, ...]

    def row(self, study: str, variant: str) -> AblationRow:
        for row in self.rows:
            if (row.study, row.variant) == (study, variant):
                return row
        raise KeyError((study, variant))

    def variants(self, study: str) -> list[AblationRow]:
        return [r for r in self.rows if r.study == study]


def _fig7a_config() -> SystemConfig:
    topo = build_fig7a_derivative()
    star = mc_dla_star()
    return SystemConfig(
        name="MC-DLA(7a)", device=star.device, n_devices=8,
        collectives=CollectiveModel.from_topology(topo),
        vmem=VmemModel(topo.vmem), memory_node=star.memory_node)


def ablation_design(name: str, **kwargs) -> SystemConfig:
    """Design factory extending the paper's six with the 7(a) shape."""
    if name == "MC-DLA(7a)":
        return _fig7a_config()
    return design_point(name, **kwargs)


def ablation_points(batch: int = 512) -> tuple[CampaignPoint, ...]:
    """The campaign grid behind ablations 1, 3, and 4."""
    points = []

    def cells(label, design, overrides=(), replacements=()):
        for network in ABLATION_NETWORKS:
            points.append(CampaignPoint(
                design=design, network=network, batch=batch,
                strategy=ParallelStrategy.DATA, overrides=overrides,
                replacements=replacements, label=label))

    # 1. Offload window depth on the PCIe-bound baseline.
    for window in _WINDOWS:
        cells(f"dc/w={window}", "DC-DLA",
              replacements=(("offload_window", window),
                            ("prefetch_window", window)))
    # 3. Shared vs dedicated PCIe uplinks on the baseline.
    cells("dc/dedicated", "DC-DLA")
    cells("dc/shared", "DC-DLA", overrides=(("shared_uplinks", True),))
    # 4. Interconnect shape at equal budgets (Figure 7 a/b/c).
    cells("fig7a", "MC-DLA(7a)")
    cells("fig7b", "MC-DLA(S)")
    cells("fig7c", "MC-DLA(B)")
    return tuple(points)


def _mean_time(report: CampaignReport, label: str, batch: int) -> float:
    times = [report.result(label, network, batch,
                           ParallelStrategy.DATA).iteration_time
             for network in ABLATION_NETWORKS]
    return harmonic_mean(times)


def _recompute_rows(batch: int) -> list[AblationRow]:
    """Ablation 2: the recompute knob sits below ``simulate``."""
    from repro.core.design_points import dc_dla
    from repro.core.schedule import (IterationPlan, build_iteration_ops)
    from repro.core.timeline import run_timeline
    from repro.dnn.registry import build_network
    from repro.training.backprop import expand
    from repro.training.parallel import partition
    from repro.vmem.policy import MigrationAction, MigrationPolicy

    rows = []
    for label, recompute in (("recompute-on", True),
                             ("recompute-off", False)):
        config = dc_dla()
        times = []
        for network in ABLATION_NETWORKS:
            net = build_network(network)
            policy = MigrationPolicy(recompute_cheap=recompute)
            plans = policy.plan(net, batch)
            # Rebuild the iteration manually with the modified policy.
            parts = {p.name: p for p in partition(
                net, batch, ParallelStrategy.DATA, config.n_devices)}
            step = expand(net, plans)
            migrated = {p.producer: parts[p.producer].out_shard_bytes
                        for p in plans
                        if p.action is MigrationAction.OFFLOAD}
            plan = IterationPlan(net=net, batch=batch,
                                 strategy=ParallelStrategy.DATA,
                                 parts=parts, step=step,
                                 migrated_shards=migrated)
            ops = build_iteration_ops(plan, config)
            times.append(run_timeline(ops).makespan)
        rows.append(AblationRow("recompute-rule", label,
                                harmonic_mean(times)))
    return rows


def run_ablations(batch: int = 512, jobs: int = 1,
                  cache: ResultCache | None = None) -> AblationResult:
    report = run_campaign(ablation_points(batch), jobs=jobs,
                          cache=cache,
                          factory=ablation_design).raise_failures()

    rows: list[AblationRow] = []
    for window in _WINDOWS:
        rows.append(AblationRow(
            "offload-window", f"w={window}",
            _mean_time(report, f"dc/w={window}", batch)))
    rows.extend(_recompute_rows(batch))
    rows.append(AblationRow("pcie-uplinks", "dedicated",
                            _mean_time(report, "dc/dedicated", batch)))
    rows.append(AblationRow("pcie-uplinks", "shared",
                            _mean_time(report, "dc/shared", batch)))
    rows.append(AblationRow("interconnect", "fig7a-derivative",
                            _mean_time(report, "fig7a", batch)))
    rows.append(AblationRow("interconnect", "fig7b-folded",
                            _mean_time(report, "fig7b", batch)))
    rows.append(AblationRow("interconnect", "fig7c-ring",
                            _mean_time(report, "fig7c", batch)))
    return AblationResult(rows=tuple(rows))


def format_ablations(result: AblationResult) -> str:
    table_rows = []
    for row in result.rows:
        base = result.variants(row.study)[-1]
        table_rows.append([row.study, row.variant,
                           row.mean_iteration_time * 1e3,
                           f"{row.slowdown_vs(base):.2f}x"])
    return format_table(
        ["study", "variant", "iter (ms)", "vs last variant"],
        table_rows, title="Ablation studies (harmonic mean over "
                          f"{', '.join(ABLATION_NETWORKS)})")
