"""Cluster comparison: scheduling policies x designs, one shared pool.

The paper's evaluation runs one job on one design point at a time;
the memory-centric computing literature it seeded (PAPERS.md) argues
the pooling win shows up at the *system* level -- many tenants
contending for one disaggregated capacity.  This study replays the
six-design comparison as a cluster problem: every design schedules the
same seeded stream of heterogeneous jobs (training runs, pipeline
gangs, serving tenants) on the same fleet against the same pool
capacity, under each scheduling policy.

The headline extends Figure 13 to the fleet: because the
memory-centric designs complete each job's migration traffic several
times faster, their queues drain before work piles up -- the
device-centric baseline's JCT p95 sits multiples above every MC
design at equal pool capacity, and smarter scheduling (SJF, pool-aware
packing, gang backfill) only narrows the gap it cannot close.

Runs entirely through the campaign engine (process fan-out + disk
cache) and is deterministic for a fixed seed: two runs produce
byte-identical JSON.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.campaign import ResultCache, cluster_grid, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import ClusterStats
from repro.experiments.report import format_table, percent
from repro.units import TB

DEFAULT_POLICIES = ("fifo", "sjf", "pool-fit", "gang")
DEFAULT_JOB_MIX = "balanced"
DEFAULT_JOBS = 20
DEFAULT_SEED = 0
#: Submission rate high enough that queues actually form.
DEFAULT_ARRIVAL_RATE = 0.05
#: The equal pool capacity every design gets -- large enough to admit
#: the widest gang (a GPT2 training job reserves ~780 GB), small
#: enough that two cannot run side by side.
DEFAULT_POOL_CAPACITY = 1 * TB

#: The memory-centric designs and the device-centric baseline they
#: must beat (HC-DLA's hypothetical 300 GB/s socket makes it a
#: separate, stronger reference point).
MC_DESIGNS = ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")
DC_BASELINE = "DC-DLA"


@dataclass(frozen=True)
class ClusterComparison:
    """All (design, policy) cluster cells of the study."""

    job_mix: str
    n_jobs: int
    pool_capacity: int
    policies: tuple[str, ...]
    #: (design, policy) -> fleet statistics.
    stats: dict[tuple[str, str], ClusterStats]

    def at(self, design: str, policy: str) -> ClusterStats:
        return self.stats[(design, policy)]

    def jct_p95_speedup(self, design: str, policy: str) -> float:
        """DC-DLA's tail JCT over the design's, same policy."""
        return (self.at(DC_BASELINE, policy).jct_p95
                / self.at(design, policy).jct_p95)

    def throughput_gain(self, design: str, policy: str) -> float:
        """Job throughput relative to DC-DLA, same policy."""
        return (self.at(design, policy).throughput
                / self.at(DC_BASELINE, policy).throughput)

    def best_policy(self, design: str) -> str:
        """The policy minimizing the design's JCT p95."""
        return min(self.policies,
                   key=lambda p: (self.at(design, p).jct_p95, p))

    def scalars(self) -> dict[str, Any]:
        """Flat key scalars (golden snapshot / determinism checks)."""
        out: dict[str, Any] = {}
        for (design, policy), s in sorted(self.stats.items()):
            prefix = f"{design}/{policy}"
            out[f"{prefix}/jct_p50"] = s.jct_p50
            out[f"{prefix}/jct_p95"] = s.jct_p95
            out[f"{prefix}/makespan"] = s.makespan
            out[f"{prefix}/queue_delay_mean"] = s.queue_delay_mean
            out[f"{prefix}/pool_utilization"] = s.pool_utilization
            out[f"{prefix}/fragmentation"] = s.fragmentation
            out[f"{prefix}/preemptions"] = s.preemptions
        return out


def comparison_points(policies: tuple[str, ...] = DEFAULT_POLICIES,
                      n_jobs: int = DEFAULT_JOBS,
                      seed: int = DEFAULT_SEED,
                      pool_capacity: int = DEFAULT_POOL_CAPACITY,
                      arrival_rate: float = DEFAULT_ARRIVAL_RATE):
    """The study's campaign cells."""
    return cluster_grid(DESIGN_ORDER, policies=policies,
                        job_mixes=(DEFAULT_JOB_MIX,),
                        n_jobs=n_jobs, seed=seed,
                        arrival_rate=arrival_rate,
                        pool_capacity=pool_capacity)


def run_cluster_comparison(
        policies: tuple[str, ...] = DEFAULT_POLICIES,
        n_jobs: int = DEFAULT_JOBS,
        seed: int = DEFAULT_SEED,
        pool_capacity: int = DEFAULT_POOL_CAPACITY,
        arrival_rate: float = DEFAULT_ARRIVAL_RATE,
        jobs: int = 1,
        cache: ResultCache | None = None) -> ClusterComparison:
    """Run the study through the campaign engine."""
    if cache is None:
        cache = ResultCache.from_env()
    report = run_campaign(
        comparison_points(policies, n_jobs, seed, pool_capacity,
                          arrival_rate),
        jobs=jobs, cache=cache).raise_failures()

    stats: dict[tuple[str, str], ClusterStats] = {}
    for outcome in report.outcomes:
        cluster = outcome.result.cluster
        stats[(outcome.point.design, cluster.policy)] = cluster
    return ClusterComparison(job_mix=DEFAULT_JOB_MIX, n_jobs=n_jobs,
                             pool_capacity=pool_capacity,
                             policies=tuple(policies), stats=stats)


def format_cluster_comparison(study: ClusterComparison) -> str:
    """Render the policy x design matrix plus the headline summary."""
    rows = []
    for policy in study.policies:
        for design in DESIGN_ORDER:
            s = study.at(design, policy)
            rows.append([
                design, policy,
                s.jct_p50, s.jct_p95, s.queue_delay_mean,
                percent(s.device_utilization),
                percent(s.pool_utilization),
                percent(s.fragmentation),
                f"{s.throughput * 3600:.1f}",
            ])
    table = format_table(
        ["design", "policy", "JCT p50 (s)", "JCT p95 (s)", "wait (s)",
         "devices", "pool", "frag", "jobs/h"],
        rows,
        title=(f"Scheduling {study.n_jobs} {study.job_mix}-mix jobs "
               f"on a shared {study.pool_capacity / TB:.1f} TiB pool"))

    best = {design: study.best_policy(design)
            for design in DESIGN_ORDER}
    lines = [
        "best policy per design: " + ", ".join(
            f"{d}: {p}" for d, p in best.items()),
    ]
    for policy in study.policies:
        gains = ", ".join(
            f"{design}: {study.jct_p95_speedup(design, policy):.1f}x"
            for design in MC_DESIGNS)
        lines.append(f"JCT p95 gain over {DC_BASELINE} under "
                     f"{policy}: {gains}")
    worst_gain = min(study.throughput_gain(d, p)
                     for d in MC_DESIGNS for p in study.policies)
    lines.append(f"every MC design sustains >= {worst_gain:.2f}x "
                 f"{DC_BASELINE}'s job throughput at equal pool "
                 f"capacity")
    return table + "\n" + "\n".join(lines)
