"""Table IV + Section V-C: memory-node power and system perf/W.

Reproduces Table IV's DIMM/node TDP and GB/W columns from the DIMM
catalog, then combines the measured MC-DLA(B) speedup with the 8 GB
RDIMM (+7% system power) and 128 GB LRDIMM (+31%) build-outs to get the
paper's 2.6x / 2.1x performance-per-watt numbers, and the 10.4 TB pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig13_performance import Fig13Result, run_fig13
from repro.experiments.report import format_table, percent
from repro.memnode.dimm import (DDR4_8GB_RDIMM, DDR4_128GB_LRDIMM,
                                DIMM_CATALOG)
from repro.memnode.power import (PowerReport, memory_node_power,
                                 perf_per_watt_gain)


@dataclass(frozen=True)
class Tab4Result:
    reports: tuple[PowerReport, ...]
    measured_speedup: float
    perf_per_watt_low_power: float    # 8 GB RDIMM build-out
    perf_per_watt_high_capacity: float  # 128 GB LRDIMM build-out
    pool_capacity_tb: float


def run_tab4(fig13: Fig13Result | None = None) -> Tab4Result:
    fig13 = fig13 or run_fig13()
    speedup = fig13.mean_speedup("MC-DLA(B)")
    reports = tuple(memory_node_power(dimm) for dimm in DIMM_CATALOG)
    high_cap = memory_node_power(DDR4_128GB_LRDIMM)
    return Tab4Result(
        reports=reports,
        measured_speedup=speedup,
        perf_per_watt_low_power=perf_per_watt_gain(speedup,
                                                   DDR4_8GB_RDIMM),
        perf_per_watt_high_capacity=perf_per_watt_gain(
            speedup, DDR4_128GB_LRDIMM),
        pool_capacity_tb=high_cap.added_capacity_tb,
    )


def format_tab4(result: Tab4Result) -> str:
    rows = [[r.dimm.name, r.dimm.tdp_watts, r.node_tdp_w,
             r.node_gb_per_watt, percent(r.system_overhead)]
            for r in result.reports]
    table = format_table(
        ["DDR4 module", "DIMM TDP (W)", "node TDP (W)", "GB/W",
         "system overhead"],
        rows, title="Table IV: memory-node power consumption (DDR4-2400)")
    return (f"{table}\n"
            f"Measured MC-DLA(B) speedup: {result.measured_speedup:.2f}x\n"
            f"Perf/W vs DC-DLA: {result.perf_per_watt_low_power:.2f}x "
            f"(8GB RDIMM, paper 2.6x) to "
            f"{result.perf_per_watt_high_capacity:.2f}x "
            f"(128GB LRDIMM, paper 2.1x)\n"
            f"Added memory pool: {result.pool_capacity_tb:.1f} TB "
            f"(paper: 10.4 TB)")
