"""Figure 12: CPU memory bandwidth usage under different DLA designs.

Average (sustained) per-socket bandwidth for data- and model-parallel
training, plus the peak concurrent DMA demand, for DC-DLA, HC-DLA, and
MC-DLA.  MC-DLA consumes *zero* CPU memory bandwidth -- its backing
store lives behind the device-side interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_points import design_point
from repro.core.simulator import host_bandwidth_usage
from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.matrix import EvaluationMatrix, evaluation_matrix
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import GBPS

FIG12_DESIGNS = ("DC-DLA", "HC-DLA", "MC-DLA(B)")


@dataclass(frozen=True)
class Fig12Bar:
    design: str
    network: str
    avg_data_gbps: float
    avg_model_gbps: float
    max_gbps: float


@dataclass(frozen=True)
class Fig12Result:
    bars: tuple[Fig12Bar, ...]
    socket_bw_gbps: dict[str, float]

    def bar(self, design: str, network: str) -> Fig12Bar:
        for bar in self.bars:
            if (bar.design, bar.network) == (design, network):
                return bar
        raise KeyError((design, network))

    def worst_case_fraction(self, design: str) -> float:
        """Largest sustained fraction of socket bandwidth consumed
        (paper: HC-DLA reaches ~92% on certain workloads)."""
        socket = self.socket_bw_gbps[design]
        if socket == 0:
            return 0.0
        return max(max(b.avg_data_gbps, b.avg_model_gbps) / socket
                   for b in self.bars if b.design == design)


def run_fig12(matrix: EvaluationMatrix | None = None) -> Fig12Result:
    matrix = matrix or evaluation_matrix()
    bars = []
    socket_bw = {}
    for design in FIG12_DESIGNS:
        config = design_point(design)
        socket_bw[design] = (config.host_socket.mem_bandwidth / GBPS
                             if config.host_socket else 0.0)
        for network in BENCHMARK_NAMES:
            if config.uses_host_memory:
                usage_d = host_bandwidth_usage(
                    config, matrix.result(design, network,
                                          ParallelStrategy.DATA))
                usage_m = host_bandwidth_usage(
                    config, matrix.result(design, network,
                                          ParallelStrategy.MODEL))
                bars.append(Fig12Bar(
                    design, network,
                    avg_data_gbps=usage_d.avg_bytes_per_sec / GBPS,
                    avg_model_gbps=usage_m.avg_bytes_per_sec / GBPS,
                    max_gbps=max(usage_d.max_bytes_per_sec,
                                 usage_m.max_bytes_per_sec) / GBPS))
            else:
                # Memory-centric designs never touch host DRAM.
                bars.append(Fig12Bar(design, network, 0.0, 0.0, 0.0))
    return Fig12Result(bars=tuple(bars), socket_bw_gbps=socket_bw)


def format_fig12(result: Fig12Result) -> str:
    rows = [[b.design, b.network, b.avg_data_gbps, b.avg_model_gbps,
             b.max_gbps] for b in result.bars]
    table = format_table(
        ["design", "network", "avg DP (GB/s)", "avg MP (GB/s)",
         "max (GB/s)"],
        rows,
        title="Figure 12: per-socket CPU memory bandwidth usage")
    hc = result.worst_case_fraction("HC-DLA")
    return (f"{table}\n"
            f"HC-DLA worst-case socket bandwidth usage: {hc * 100:.0f}% "
            f"(paper: ~92%); MC-DLA: 0%")
