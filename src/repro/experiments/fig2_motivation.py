"""Figure 2: the widening device/PCIe gap (motivation).

For each of five accelerator generations, run the four CNNs on a single
device with PCIe-gen3 memory virtualization and without (oracle), and
report (a) execution time normalized to the slowest generation and (b)
the virtualization overhead percentage -- which grows as devices get
faster while the host link does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.generations import GENERATIONS
from repro.core.design_points import single_device, single_device_oracle
from repro.core.simulator import simulate
from repro.dnn.registry import CNN_NAMES
from repro.experiments.report import format_table, percent
from repro.training.parallel import ParallelStrategy


@dataclass(frozen=True)
class Fig2Point:
    network: str
    generation: str
    time_virtualized: float
    time_oracle: float

    @property
    def overhead(self) -> float:
        """Fraction of runtime lost to memory virtualization."""
        return (self.time_virtualized - self.time_oracle) \
            / self.time_virtualized


@dataclass(frozen=True)
class Fig2Result:
    points: tuple[Fig2Point, ...]

    def series(self, network: str) -> list[Fig2Point]:
        return [p for p in self.points if p.network == network]

    def normalized_time(self, point: Fig2Point) -> float:
        """Native execution time normalized to the slowest device.

        The figure's left axis plots device execution time (which fell
        20-34x over five years); the right axis plots what PCIe-based
        virtualization would add on top -- the widening gap.
        """
        slowest = max(p.time_oracle for p in self.series(point.network))
        return point.time_oracle / slowest

    def generation_speedup(self, network: str) -> float:
        """Oldest-to-newest compute speedup (paper: 20x-34x)."""
        series = self.series(network)
        return series[0].time_oracle / series[-1].time_oracle


def run_fig2(batch: int = 256) -> Fig2Result:
    """Figure 2 uses a single device; a moderate batch keeps the oldest
    generations' footprints realistic."""
    points = []
    for network in CNN_NAMES:
        for device in GENERATIONS:
            virt = simulate(single_device(f"{device.name}-virt", device),
                            network, batch, ParallelStrategy.DATA)
            oracle = simulate(
                single_device_oracle(f"{device.name}-oracle", device),
                network, batch, ParallelStrategy.DATA)
            points.append(Fig2Point(network, device.name,
                                    virt.iteration_time,
                                    oracle.iteration_time))
    return Fig2Result(points=tuple(points))


def format_fig2(result: Fig2Result) -> str:
    rows = []
    for point in result.points:
        rows.append([point.network, point.generation,
                     result.normalized_time(point),
                     percent(point.overhead)])
    table = format_table(
        ["network", "device", "time (norm)", "virt overhead"], rows,
        title="Figure 2: exec time across device generations and "
              "PCIe virtualization overhead")
    gains = [f"{n}: {result.generation_speedup(n):.1f}x"
             for n in CNN_NAMES]
    return table + "\nKepler->TPUv2 compute speedup: " + ", ".join(gains)
