"""Figure 13: performance of the six design points.

Throughput normalized to the oracle DC-DLA(O), per workload, for (a)
data-parallel and (b) model-parallel training, plus the paper's
headline aggregates: MC-DLA(B) speedup over DC-DLA (3.5x DP, 2.1x MP,
2.8x overall), HC-DLA's 32%/38% gains, MC-DLA(B) at 84-99% of the
oracle, MC-DLA(L) at ~96% of MC-DLA(B), and MC-DLA(S)'s ~14% average
loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.design_points import DESIGN_ORDER
from repro.dnn.registry import BENCHMARK_NAMES
from repro.experiments.matrix import (STRATEGIES, EvaluationMatrix,
                                      evaluation_matrix)
from repro.experiments.report import format_table
from repro.training.parallel import ParallelStrategy
from repro.units import harmonic_mean


@dataclass(frozen=True)
class Fig13Result:
    batch: int
    #: (strategy, network, design) -> performance normalized to oracle.
    performance: dict[tuple[ParallelStrategy, str, str], float]

    def perf(self, strategy: ParallelStrategy, network: str,
             design: str) -> float:
        return self.performance[(strategy, network, design)]

    def speedups(self, design: str, strategy: ParallelStrategy,
                 baseline: str = "DC-DLA") -> list[float]:
        return [self.perf(strategy, n, design)
                / self.perf(strategy, n, baseline)
                for n in BENCHMARK_NAMES]

    def mean_speedup(self, design: str,
                     strategy: ParallelStrategy | None = None,
                     baseline: str = "DC-DLA") -> float:
        """Harmonic-mean speedup; both strategies pooled when None."""
        if strategy is not None:
            return harmonic_mean(self.speedups(design, strategy, baseline))
        pooled = []
        for strat in STRATEGIES:
            pooled.extend(self.speedups(design, strat, baseline))
        return harmonic_mean(pooled)

    def oracle_fraction_range(self, design: str = "MC-DLA(B)") \
            -> tuple[float, float, float]:
        """(min, harmonic mean, max) of design/oracle across the grid."""
        fracs = [self.perf(s, n, design)
                 for s in STRATEGIES for n in BENCHMARK_NAMES]
        return min(fracs), harmonic_mean(fracs), max(fracs)


def run_fig13(batch: int = 512,
              matrix: EvaluationMatrix | None = None) -> Fig13Result:
    matrix = matrix or evaluation_matrix(batch)
    performance = {}
    for strategy in STRATEGIES:
        for network in BENCHMARK_NAMES:
            for design in DESIGN_ORDER:
                performance[(strategy, network, design)] = \
                    matrix.performance(design, network, strategy)
    return Fig13Result(batch=batch, performance=performance)


def format_fig13(result: Fig13Result) -> str:
    sections = []
    for strategy, label in ((ParallelStrategy.DATA, "(a) data-parallel"),
                            (ParallelStrategy.MODEL,
                             "(b) model-parallel")):
        rows = [[network] + [result.perf(strategy, network, design)
                             for design in DESIGN_ORDER]
                for network in BENCHMARK_NAMES]
        sections.append(format_table(
            ["network", *DESIGN_ORDER], rows,
            title=f"Figure 13{label}: performance normalized to "
                  "DC-DLA(O)"))

    lo, mean, hi = result.oracle_fraction_range()
    mcb = result.mean_speedup("MC-DLA(B)")
    local_frac = result.mean_speedup("MC-DLA(L)") / mcb
    star_loss = 1 - result.mean_speedup("MC-DLA(S)") / mcb
    summary = [
        f"MC-DLA(B) over DC-DLA: "
        f"{result.mean_speedup('MC-DLA(B)', ParallelStrategy.DATA):.2f}x "
        f"DP (paper 3.5x), "
        f"{result.mean_speedup('MC-DLA(B)', ParallelStrategy.MODEL):.2f}x "
        f"MP (paper 2.1x), "
        f"{result.mean_speedup('MC-DLA(B)'):.2f}x overall (paper 2.8x)",
        f"HC-DLA over DC-DLA: "
        f"{result.mean_speedup('HC-DLA', ParallelStrategy.DATA):.2f}x DP "
        f"(paper 1.32x), "
        f"{result.mean_speedup('HC-DLA', ParallelStrategy.MODEL):.2f}x MP "
        f"(paper 1.38x)",
        f"MC-DLA(B) vs oracle: {lo * 100:.0f}%-{hi * 100:.0f}%, "
        f"mean {mean * 100:.0f}% (paper 84%-99%, mean 95%)",
        f"MC-DLA(L) achieves {local_frac * 100:.0f}% of MC-DLA(B) "
        f"(paper ~96%)",
        f"MC-DLA(S) loses {star_loss * 100:.0f}% vs MC-DLA(B) "
        f"(paper avg 14%, max 24%)",
    ]
    return "\n".join(sections) + "\n" + "\n".join(summary)
