"""Fault-model comparison: graceful degradation, end to end.

The paper's pooled-memory argument assumes the disaggregation fabric
stays healthy; the related far-memory literature (PAPERS.md) shows
that assumption is the first casualty of production.  This study runs
the whole fault axis -- the ``none`` healthy baseline, timed
``flaky-link`` flaps, a standing ``degraded-link`` derating, a
``straggler`` device, a mid-run ``node-loss``, and the everything-at-
once ``storm`` -- across all six designs in four execution modes:

* **training**: one data-parallel iteration of a convolutional
  workload under duty-cycle-blended link degradation;
* **pipeline**: a 1F1B transformer pipeline, where a degraded fabric
  stretches both the stage sends and the stash traffic;
* **serving**: a dynamic-batching tenant whose recovery levers are
  SLO-aware load shedding and request timeouts;
* **cluster**: a multi-job fleet where flaps dilate in-flight jobs,
  a pool-node loss force-evicts the newest tenants, and evicted jobs
  retry with exponential backoff billed through the preemption ledger.

Headlines: every design degrades monotonically with fault severity
(``none`` is always the fastest leg -- asserted by the differential
test suite), the memory-centric designs carry the larger storm
slowdown because their traffic rides the degraded fabric, and the
``availability`` column quantifies what graceful degradation saved
versus a system that simply stops.

Runs entirely through the campaign engine (process fan-out + disk
cache) and is deterministic: two runs produce byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.campaign import CampaignPoint, ResultCache, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import SimulationResult
from repro.experiments.report import format_table, percent
from repro.faults.model import FAULT_MODEL_ORDER
from repro.training.parallel import ParallelStrategy
from repro.units import TB

MODES = ("training", "pipeline", "serving", "cluster")

DEFAULT_TRAINING_NETWORK = "VGG-E"
DEFAULT_TRAINING_BATCH = 512
DEFAULT_PIPELINE_NETWORK = "GPT2"
DEFAULT_PIPELINE_BATCH = 64
DEFAULT_SERVING_NETWORK = "GPT2"
DEFAULT_SERVING_RATE = 800.0
DEFAULT_SERVING_REQUESTS = 128
DEFAULT_CLUSTER_JOBS = 12
DEFAULT_CLUSTER_POOL = 1 * TB


@dataclass(frozen=True)
class FaultComparison:
    """All (mode, design, fault model) cells of the study."""

    models: tuple[str, ...]
    modes: tuple[str, ...]
    #: (mode, design, model) -> the cell's simulation result.
    results: dict[tuple[str, str, str], SimulationResult]

    def at(self, mode: str, design: str,
           model: str) -> SimulationResult:
        return self.results[(mode, design, model)]

    def slowdown(self, mode: str, design: str, model: str) -> float:
        """Faulted over healthy-twin time; 1.0 for the null model."""
        result = self.at(mode, design, model)
        return (result.faults.slowdown
                if result.faults is not None else 1.0)

    def scalars(self) -> dict[str, Any]:
        """Flat key scalars (golden snapshot / determinism checks)."""
        out: dict[str, Any] = {}
        for (mode, design, model), result in sorted(
                self.results.items()):
            prefix = f"{mode}/{design}/{model}"
            if mode in ("training", "pipeline"):
                out[f"{prefix}/iteration_time"] = result.iteration_time
            if mode == "serving":
                out[f"{prefix}/latency_p99"] = \
                    result.serving.latency_p99
                out[f"{prefix}/goodput"] = result.serving.goodput
            if mode == "cluster":
                out[f"{prefix}/makespan"] = result.iteration_time
                out[f"{prefix}/jct_p95"] = result.cluster.jct_p95
            stats = result.faults
            if stats is not None:
                out[f"{prefix}/injected_events"] = stats.injected_events
                out[f"{prefix}/slowdown"] = stats.slowdown
                out[f"{prefix}/availability"] = stats.availability
                out[f"{prefix}/retries"] = stats.retries
                out[f"{prefix}/shed_requests"] = stats.shed_requests
                out[f"{prefix}/timed_out_requests"] = \
                    stats.timed_out_requests
                out[f"{prefix}/recovery_bytes"] = stats.recovery_bytes
        return out


def comparison_points(models=FAULT_MODEL_ORDER, modes=MODES,
                      cluster_jobs: int = DEFAULT_CLUSTER_JOBS,
                      training_network: str = DEFAULT_TRAINING_NETWORK) \
        -> tuple[CampaignPoint, ...]:
    """The study's campaign cells, mode-major."""
    points: list[CampaignPoint] = []
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"known: {', '.join(MODES)}")
        for model in models:
            knob = ("fault_model", model)
            for design in DESIGN_ORDER:
                if mode == "training":
                    points.append(CampaignPoint(
                        design=design, network=training_network,
                        batch=DEFAULT_TRAINING_BATCH,
                        replacements=(knob,),
                        label=f"{design}|{model}|training"))
                elif mode == "pipeline":
                    points.append(CampaignPoint(
                        design=design,
                        network=DEFAULT_PIPELINE_NETWORK,
                        batch=DEFAULT_PIPELINE_BATCH,
                        strategy=ParallelStrategy.PIPELINE,
                        replacements=(knob,),
                        label=f"{design}|{model}|pipeline"))
                elif mode == "serving":
                    points.append(CampaignPoint(
                        design=design,
                        network=DEFAULT_SERVING_NETWORK,
                        batch=8,
                        replacements=(knob,),
                        serving=(
                            ("max_batch", 8),
                            ("max_wait", 0.002),
                            ("n_requests", DEFAULT_SERVING_REQUESTS),
                            ("rate", DEFAULT_SERVING_RATE),
                            ("seed", 0),
                            ("slo", 0.05)),
                        label=f"{design}|{model}|serving"))
                else:
                    points.append(CampaignPoint(
                        design=design, network="mix:balanced",
                        batch=cluster_jobs,
                        replacements=(knob,),
                        cluster=(
                            ("arrival_rate", 0.05),
                            ("job_mix", "balanced"),
                            ("n_jobs", cluster_jobs),
                            # Oversubscribed so the pool-node loss has
                            # reservations to squeeze and spills to
                            # re-price.
                            ("oversubscription", 1.5),
                            ("policy", "fifo"),
                            ("pool_capacity", DEFAULT_CLUSTER_POOL),
                            ("seed", 0)),
                        label=f"{design}|{model}|cluster"))
    return tuple(points)


def run_fault_comparison(models=FAULT_MODEL_ORDER, modes=MODES,
                         cluster_jobs: int = DEFAULT_CLUSTER_JOBS,
                         training_network: str =
                         DEFAULT_TRAINING_NETWORK,
                         jobs: int = 1,
                         cache: ResultCache | None = None) \
        -> FaultComparison:
    """Run the study through the campaign engine."""
    if cache is None:
        cache = ResultCache.from_env()
    points = comparison_points(models, modes, cluster_jobs,
                               training_network)
    report = run_campaign(points, jobs=jobs,
                          cache=cache).raise_failures()
    results: dict[tuple[str, str, str], SimulationResult] = {}
    for outcome in report.outcomes:
        design, model, mode = outcome.point.label.split("|")
        results[(mode, design, model)] = outcome.result
    return FaultComparison(models=tuple(models), modes=tuple(modes),
                           results=results)


def _fault_cells(result: SimulationResult) -> list:
    """The shared slowdown/availability/events tail of every row."""
    stats = result.faults
    if stats is None:
        return ["1.00x", percent(1.0), 0]
    return [f"{stats.slowdown:.2f}x", percent(stats.availability),
            stats.injected_events]


def _mode_rows(study: FaultComparison, mode: str) -> list[list]:
    rows = []
    for design in DESIGN_ORDER:
        for model in study.models:
            result = study.at(mode, design, model)
            stats = result.faults
            row = [design, model]
            if mode in ("training", "pipeline"):
                row += [result.iteration_time * 1e3]
            elif mode == "serving":
                serving = result.serving
                row += [
                    serving.latency_p99 * 1e3,
                    f"{serving.goodput:.1f}",
                    stats.shed_requests if stats else 0,
                    stats.timed_out_requests if stats else 0,
                ]
            else:
                cluster = result.cluster
                row += [
                    f"{result.iteration_time:.1f}",
                    f"{cluster.jct_p95:.1f}",
                    stats.retries if stats else 0,
                ]
            rows.append(row + _fault_cells(result))
    return rows


_MODE_HEADERS = {
    "training": ["design", "fault", "iter (ms)", "slowdown",
                 "avail.", "events"],
    "pipeline": ["design", "fault", "iter (ms)", "slowdown",
                 "avail.", "events"],
    "serving": ["design", "fault", "p99 (ms)", "goodput", "shed",
                "timeout", "slowdown", "avail.", "events"],
    "cluster": ["design", "fault", "makespan (s)", "JCT p95 (s)",
                "retries", "slowdown", "avail.", "events"],
}


def format_fault_comparison(study: FaultComparison) -> str:
    """Render one table per mode plus the headline summary."""
    blocks = []
    for mode in study.modes:
        blocks.append(format_table(
            _MODE_HEADERS[mode], _mode_rows(study, mode),
            title=f"Fault models x designs: {mode}"))
    lines = []
    if "storm" in study.models:
        for mode in study.modes:
            worst = max(DESIGN_ORDER,
                        key=lambda d: (study.slowdown(mode, d, "storm"),
                                       d))
            lines.append(
                f"worst storm slowdown ({mode}): {worst} at "
                f"{study.slowdown(mode, worst, 'storm'):.2f}x")
    return "\n".join(blocks) + "\n" + "\n".join(lines)


def scalars_json(study: FaultComparison) -> str:
    """The study's scalars as deterministic, sorted JSON."""
    return json.dumps(study.scalars(), indent=2, sort_keys=True)
