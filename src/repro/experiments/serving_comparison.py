"""Serving comparison: six designs under rising load until SLO collapse.

The paper's evaluation stops at steady-state training iterations; this
study replays its six-design comparison on the workload the follow-on
memory-centric-computing literature actually targets -- bursty
inference serving.  Each design serves an open-loop GPT2 request trace
through the dynamic batcher at a ladder of arrival rates; a
consolidated multi-tenant node streams the model's weights from the
backing store per batch, so the virtualization channel prices directly
into every request's service time.

The headline mirrors Figure 13 in queueing clothes: the device-centric
baseline's PCIe-attached backing store saturates first -- its SLO
attainment collapses an order of magnitude below the memory-centric
designs' knee -- while MC-DLA(B) tracks the infinite-memory oracle
within a few percent of goodput at every load.

Runs entirely through the campaign engine (process fan-out + disk
cache).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign import ResultCache, run_campaign, serving_grid
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import ServingStats
from repro.experiments.report import format_table, percent

DEFAULT_NETWORK = "GPT2"
#: The offered-load ladder (requests/sec) climbed until SLO collapse.
DEFAULT_RATES = (100.0, 200.0, 400.0, 800.0, 1600.0, 2400.0, 3200.0)
DEFAULT_SLO_MS = 50.0
DEFAULT_POLICY = (8, 2.0)  # max batch 8, 2 ms deadline
#: A design "meets" the SLO at a rate when at least this fraction of
#: requests complete within it.
ATTAINMENT_KNEE = 0.99

#: The memory-centric designs and the device-centric baseline they
#: must beat at the knee (HC-DLA's hypothetical 300 GB/s socket makes
#: it a separate, stronger reference point).
MC_DESIGNS = ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")
DC_BASELINES = ("DC-DLA",)


@dataclass(frozen=True)
class ServingComparison:
    """All (design, rate) serving cells of the study."""

    network: str
    slo_ms: float
    rates: tuple[float, ...]
    #: (design, rate) -> serving statistics.
    stats: dict[tuple[str, float], ServingStats]

    def at(self, design: str, rate: float) -> ServingStats:
        return self.stats[(design, rate)]

    def knee_rate(self, design: str) -> float:
        """The highest swept rate the design still serves within SLO
        (attainment >= ``ATTAINMENT_KNEE``); the first rung if none."""
        sustained = [r for r in self.rates
                     if self.at(design, r).slo_attainment
                     >= ATTAINMENT_KNEE]
        return max(sustained) if sustained else self.rates[0]

    def knee_goodput(self, design: str) -> float:
        """Goodput at the design's own SLO knee."""
        return self.at(design, self.knee_rate(design)).goodput

    def peak_goodput(self, design: str) -> float:
        """Best goodput anywhere on the ladder (post-knee included)."""
        return max(self.at(design, r).goodput for r in self.rates)


def comparison_points(network: str = DEFAULT_NETWORK,
                      rates: tuple[float, ...] = DEFAULT_RATES,
                      slo_ms: float = DEFAULT_SLO_MS,
                      policy: tuple[int, float] = DEFAULT_POLICY,
                      n_requests: int = 512):
    """The study's campaign cells."""
    return serving_grid(DESIGN_ORDER, (network,), rates,
                        slo_ms=(slo_ms,), batch_policies=(policy,),
                        n_requests=n_requests)


def run_serving_comparison(
        network: str = DEFAULT_NETWORK,
        rates: tuple[float, ...] = DEFAULT_RATES,
        slo_ms: float = DEFAULT_SLO_MS,
        policy: tuple[int, float] = DEFAULT_POLICY,
        n_requests: int = 512,
        jobs: int = 1,
        cache: ResultCache | None = None) -> ServingComparison:
    """Run the study through the campaign engine."""
    if cache is None:
        cache = ResultCache.from_env()
    report = run_campaign(
        comparison_points(network, rates, slo_ms, policy, n_requests),
        jobs=jobs, cache=cache).raise_failures()

    stats: dict[tuple[str, float], ServingStats] = {}
    for outcome in report.outcomes:
        serving = outcome.result.serving
        stats[(outcome.point.design, serving.offered_rate)] = serving
    return ServingComparison(network=network, slo_ms=slo_ms,
                             rates=tuple(float(r) for r in rates),
                             stats=stats)


def format_serving_comparison(study: ServingComparison) -> str:
    """Render the ladder per design plus the knee summary."""
    rows = []
    for design in DESIGN_ORDER:
        for rate in study.rates:
            s = study.at(design, rate)
            rows.append([
                design, f"{rate:g}",
                s.latency_p50 * 1e3, s.latency_p95 * 1e3,
                s.latency_p99 * 1e3,
                percent(s.slo_attainment),
                s.goodput,
                f"{s.tail_amplification:.2f}x",
            ])
    table = format_table(
        ["design", "req/s", "p50 (ms)", "p95 (ms)", "p99 (ms)",
         "SLO att.", "goodput", "tail amp"],
        rows,
        title=(f"Serving {study.network} under a "
               f"{study.slo_ms:g} ms SLO (dynamic batching)"))

    knees = ", ".join(
        f"{design}: {study.knee_rate(design):g} req/s "
        f"({study.knee_goodput(design):.0f} good req/s)"
        for design in DESIGN_ORDER)
    best_dc = max(study.knee_goodput(d) for d in DC_BASELINES)
    worst_mc = min(study.knee_goodput(d) for d in MC_DESIGNS)
    ratio = worst_mc / max(best_dc, 1e-12)
    oracle_track = (study.peak_goodput("MC-DLA(B)")
                    / study.peak_goodput("DC-DLA(O)"))
    summary = [
        f"SLO knee per design: {knees}",
        f"memory-centric vs the device-centric baseline at the knee: "
        f"worst MC sustains {ratio:.2f}x DC-DLA's goodput",
        f"MC-DLA(B) peak goodput reaches "
        f"{percent(oracle_track)} of the infinite-memory oracle",
    ]
    return table + "\n" + "\n".join(summary)
