"""Prefetch-policy comparison: the timeliness/waste trade-off, end to end.

The memory-centric argument only holds when migration traffic overlaps
compute, and the related far-memory literature (PAPERS.md) shows the
prefetch policy alone swings stall time by integer factors.  This
study runs the whole policy axis -- the legacy ``on-demand`` baseline,
the minimal ``next-op`` lookahead, the speculative ``stride``
predictor, the latency-model-driven ``cost-model``, and the
``clairvoyant`` schedule oracle -- across all six designs in four
execution modes:

* **training**: one data-parallel iteration of a convolutional
  workload, the paper's stress test;
* **pipeline**: a 1F1B transformer pipeline, where each stage's stash
  prefetches ride a private DMA channel;
* **serving**: a dynamic-batching tenant under load, where the same
  policies gate multi-tenant weight streaming;
* **cluster**: a multi-job fleet over one shared pool, where the
  policy prices each job's spill-dilation exposure.

Headlines: the clairvoyant oracle strictly reduces offload stall
versus on-demand on every memory-centric design (and weakly dominates
every policy everywhere -- asserted by the differential test suite),
while the stride predictor shows the waste side of the trade-off:
mispredicted and evicted speculative fetches move gigabytes nothing
consumes.

Runs entirely through the campaign engine (process fan-out + disk
cache) and is deterministic: two runs produce byte-identical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.campaign import CampaignPoint, ResultCache, run_campaign
from repro.core.design_points import DESIGN_ORDER
from repro.core.metrics import SimulationResult
from repro.experiments.report import format_table, percent
from repro.training.parallel import ParallelStrategy
from repro.units import GB, TB
from repro.vmem.prefetch import ON_DEMAND, PREFETCH_POLICY_ORDER

MODES = ("training", "pipeline", "serving", "cluster")

DEFAULT_TRAINING_NETWORK = "VGG-E"
DEFAULT_TRAINING_BATCH = 512
DEFAULT_PIPELINE_NETWORK = "GPT2"
DEFAULT_PIPELINE_BATCH = 64
DEFAULT_SERVING_NETWORK = "GPT2"
DEFAULT_SERVING_RATE = 800.0
DEFAULT_SERVING_REQUESTS = 128
DEFAULT_CLUSTER_JOBS = 12
DEFAULT_CLUSTER_POOL = 1 * TB

#: The designs the strict stall-reduction claim covers.
MC_DESIGNS = ("MC-DLA(S)", "MC-DLA(L)", "MC-DLA(B)")


@dataclass(frozen=True)
class PrefetchComparison:
    """All (mode, design, policy) cells of the study."""

    policies: tuple[str, ...]
    modes: tuple[str, ...]
    #: (mode, design, policy) -> the cell's simulation result.
    results: dict[tuple[str, str, str], SimulationResult]

    def at(self, mode: str, design: str,
           policy: str) -> SimulationResult:
        return self.results[(mode, design, policy)]

    def stall(self, mode: str, design: str, policy: str) -> float:
        return self.at(mode, design, policy).prefetch.stall_seconds

    def stall_reduction(self, design: str,
                        policy: str = "clairvoyant",
                        mode: str = "training") -> float:
        """Seconds of offload stall the policy removes vs on-demand."""
        return (self.stall(mode, design, ON_DEMAND)
                - self.stall(mode, design, policy))

    def scalars(self) -> dict[str, Any]:
        """Flat key scalars (golden snapshot / determinism checks)."""
        out: dict[str, Any] = {}
        for (mode, design, policy), result in sorted(
                self.results.items()):
            prefix = f"{mode}/{design}/{policy}"
            stats = result.prefetch
            if stats is not None:
                out[f"{prefix}/stall_seconds"] = stats.stall_seconds
                out[f"{prefix}/hit_rate"] = stats.hit_rate
                out[f"{prefix}/wasted_bytes"] = stats.wasted_bytes
                out[f"{prefix}/evictions"] = stats.evictions
            if mode in ("training", "pipeline"):
                out[f"{prefix}/iteration_time"] = result.iteration_time
            if mode == "serving":
                out[f"{prefix}/latency_p99"] = \
                    result.serving.latency_p99
                out[f"{prefix}/goodput"] = result.serving.goodput
            if mode == "cluster":
                out[f"{prefix}/jct_p95"] = result.cluster.jct_p95
                out[f"{prefix}/queue_delay_mean"] = \
                    result.cluster.queue_delay_mean
        return out


def comparison_points(policies=PREFETCH_POLICY_ORDER, modes=MODES,
                      cluster_jobs: int = DEFAULT_CLUSTER_JOBS,
                      training_network: str = DEFAULT_TRAINING_NETWORK) \
        -> tuple[CampaignPoint, ...]:
    """The study's campaign cells, mode-major."""
    points: list[CampaignPoint] = []
    for mode in modes:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; "
                             f"known: {', '.join(MODES)}")
        for policy in policies:
            knob = ("prefetch_policy", policy)
            for design in DESIGN_ORDER:
                if mode == "training":
                    points.append(CampaignPoint(
                        design=design, network=training_network,
                        batch=DEFAULT_TRAINING_BATCH,
                        replacements=(knob,),
                        label=f"{design}|{policy}|training"))
                elif mode == "pipeline":
                    points.append(CampaignPoint(
                        design=design,
                        network=DEFAULT_PIPELINE_NETWORK,
                        batch=DEFAULT_PIPELINE_BATCH,
                        strategy=ParallelStrategy.PIPELINE,
                        replacements=(knob,),
                        label=f"{design}|{policy}|pipeline"))
                elif mode == "serving":
                    points.append(CampaignPoint(
                        design=design,
                        network=DEFAULT_SERVING_NETWORK,
                        batch=8,
                        replacements=(knob,),
                        serving=(
                            ("max_batch", 8),
                            ("max_wait", 0.002),
                            ("n_requests", DEFAULT_SERVING_REQUESTS),
                            ("rate", DEFAULT_SERVING_RATE),
                            ("seed", 0),
                            ("slo", 0.05)),
                        label=f"{design}|{policy}|serving"))
                else:
                    points.append(CampaignPoint(
                        design=design, network="mix:balanced",
                        batch=cluster_jobs,
                        replacements=(knob,),
                        cluster=(
                            ("arrival_rate", 0.05),
                            ("job_mix", "balanced"),
                            ("n_jobs", cluster_jobs),
                            # Oversubscribed so spilling occurs and the
                            # policy's exposure actually prices.
                            ("oversubscription", 1.5),
                            ("policy", "fifo"),
                            ("pool_capacity", DEFAULT_CLUSTER_POOL),
                            ("seed", 0)),
                        label=f"{design}|{policy}|cluster"))
    return tuple(points)


def run_prefetch_comparison(policies=PREFETCH_POLICY_ORDER,
                            modes=MODES,
                            cluster_jobs: int = DEFAULT_CLUSTER_JOBS,
                            training_network: str =
                            DEFAULT_TRAINING_NETWORK,
                            jobs: int = 1,
                            cache: ResultCache | None = None) \
        -> PrefetchComparison:
    """Run the study through the campaign engine."""
    if cache is None:
        cache = ResultCache.from_env()
    points = comparison_points(policies, modes, cluster_jobs,
                               training_network)
    report = run_campaign(points, jobs=jobs,
                          cache=cache).raise_failures()
    results: dict[tuple[str, str, str], SimulationResult] = {}
    for outcome in report.outcomes:
        design, policy, mode = outcome.point.label.split("|")
        results[(mode, design, policy)] = outcome.result
    return PrefetchComparison(policies=tuple(policies),
                              modes=tuple(modes), results=results)


def _mode_rows(study: PrefetchComparison, mode: str) -> list[list]:
    rows = []
    for design in DESIGN_ORDER:
        for policy in study.policies:
            result = study.at(mode, design, policy)
            stats = result.prefetch
            row = [design, policy]
            if mode in ("training", "pipeline"):
                row += [
                    result.iteration_time * 1e3,
                    stats.stall_seconds * 1e3,
                    percent(stats.hit_rate),
                    f"{stats.wasted_bytes / GB:.2f}",
                    stats.evictions,
                ]
            elif mode == "serving":
                serving = result.serving
                row += [
                    serving.latency_p99 * 1e3,
                    f"{serving.goodput:.1f}",
                    percent(serving.slo_attainment),
                    f"{stats.wasted_bytes / GB:.2f}" if stats else "--",
                ]
            else:
                cluster = result.cluster
                row += [
                    f"{cluster.jct_p95:.1f}",
                    f"{cluster.queue_delay_mean:.1f}",
                    f"{cluster.throughput * 3600:.1f}",
                ]
            rows.append(row)
    return rows


_MODE_HEADERS = {
    "training": ["design", "policy", "iter (ms)", "stall (ms)",
                 "hit rate", "waste (GiB)", "evictions"],
    "pipeline": ["design", "policy", "iter (ms)", "stall (ms)",
                 "hit rate", "waste (GiB)", "evictions"],
    "serving": ["design", "policy", "p99 (ms)", "goodput",
                "SLO att.", "waste (GiB)"],
    "cluster": ["design", "policy", "JCT p95 (s)", "wait (s)",
                "jobs/h"],
}


def format_prefetch_comparison(study: PrefetchComparison) -> str:
    """Render one table per mode plus the headline summary."""
    blocks = []
    for mode in study.modes:
        blocks.append(format_table(
            _MODE_HEADERS[mode], _mode_rows(study, mode),
            title=f"Prefetch policies x designs: {mode}"))
    lines = []
    if "training" in study.modes:
        # Headlines only exist for the policies actually swept.
        if ON_DEMAND in study.policies \
                and "clairvoyant" in study.policies:
            gains = ", ".join(
                f"{design}: "
                f"-{study.stall_reduction(design) * 1e3:.1f}ms"
                for design in MC_DESIGNS)
            lines.append(
                "clairvoyant removes offload stall vs on-demand on "
                f"every memory-centric design (training): {gains}")
        if "stride" in study.policies:
            waste = sum(
                study.at("training", design,
                         "stride").prefetch.wasted_bytes
                for design in DESIGN_ORDER)
            lines.append(
                f"stride speculation moved {waste / GB:.1f} GiB of "
                f"wasted prefetch traffic across the training matrix")
        best = {}
        for design in DESIGN_ORDER:
            best[design] = min(
                study.policies,
                key=lambda p: (study.stall("training", design, p), p))
        lines.append("lowest-stall policy per design (training): "
                     + ", ".join(f"{d}: {p}" for d, p in best.items()))
    return "\n".join(blocks) + "\n" + "\n".join(lines)


def scalars_json(study: PrefetchComparison) -> str:
    """The study's scalars as deterministic, sorted JSON."""
    return json.dumps(study.scalars(), indent=2, sort_keys=True)
