"""ASCII rendering helpers shared by the experiment harness.

Every experiment prints the same rows/series the paper's figures plot,
as plain-text tables, so benchmark logs double as the reproduction
record (EXPERIMENTS.md is generated from these).
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width table; floats get 3 significant decimals."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return " | ".join(v.ljust(w) for v, w in zip(values, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def format_series(name: str, xs: Sequence[object],
                  ys: Sequence[float]) -> str:
    """Render one plotted series as ``name: x=y`` pairs."""
    pairs = ", ".join(f"{x}={y:.3f}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def format_bars(labels: Sequence[str], values: Sequence[float],
                width: int = 48, title: str = "") -> str:
    """Render a horizontal ASCII bar chart (values scaled to width)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(values, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    out = [title] if title else []
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError("bar values must be non-negative")
        bar = "#" * (round(width * value / peak) if peak else 0)
        out.append(f"{label.ljust(label_width)} |{bar} {value:.3f}")
    return "\n".join(out)


def format_stacked_bars(labels: Sequence[str],
                        stacks: Sequence[Sequence[float]],
                        segment_chars: str = "#=~",
                        width: int = 48, title: str = "") -> str:
    """Render stacked bars (e.g. Figure 11's compute/sync/vmem)."""
    if len(labels) != len(stacks):
        raise ValueError("labels and stacks must align")
    totals = [sum(stack) for stack in stacks]
    peak = max(totals, default=0.0)
    label_width = max((len(l) for l in labels), default=0)
    out = [title] if title else []
    for label, stack in zip(labels, stacks):
        if len(stack) > len(segment_chars):
            raise ValueError("not enough segment characters")
        if any(v < 0 for v in stack):
            raise ValueError("bar values must be non-negative")
        bar = "".join(
            char * (round(width * value / peak) if peak else 0)
            for value, char in zip(stack, segment_chars))
        out.append(f"{label.ljust(label_width)} |{bar} {sum(stack):.3f}")
    return "\n".join(out)
