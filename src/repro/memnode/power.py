"""System-level power accounting (paper Section V-C, Table IV).

MC-DLA reuses existing accelerators as-is, so its power overhead is the
memory-nodes added to the rings.  The baseline is NVIDIA's DGX (3200 W
TDP, of which the eight 300 W V100s are 75%); Microsoft's HGX-1 chassis
reaches 9600 W, which bounds what a 4U enclosure can host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memnode.dimm import DIMM_CATALOG, DimmSpec
from repro.memnode.memory_node import MemoryNodeSpec, node_with_dimm
from repro.units import TB

#: DGX-1V system TDP and its device share.
DGX_SYSTEM_TDP_W = 3200.0
DGX_DEVICE_TDP_W = 300.0
DGX_DEVICE_COUNT = 8


@dataclass(frozen=True)
class PowerReport:
    """Power/perf summary of an MC-DLA build-out with one DIMM type."""

    dimm: DimmSpec
    node_tdp_w: float
    node_gb_per_watt: float
    system_tdp_w: float
    system_overhead: float        # fractional increase over DGX
    added_capacity_bytes: int

    @property
    def added_capacity_tb(self) -> float:
        return self.added_capacity_bytes / TB


def memory_node_power(dimm: DimmSpec, n_nodes: int = 8,
                      n_dimms: int = 10) -> PowerReport:
    """Table IV row + system-level overhead for ``n_nodes`` nodes."""
    if n_nodes <= 0:
        raise ValueError("need at least one memory-node")
    node = node_with_dimm(dimm, n_dimms)
    added_w = node.tdp_watts * n_nodes
    system_w = DGX_SYSTEM_TDP_W + added_w
    return PowerReport(
        dimm=dimm,
        node_tdp_w=node.tdp_watts,
        node_gb_per_watt=node.gb_per_watt,
        system_tdp_w=system_w,
        system_overhead=added_w / DGX_SYSTEM_TDP_W,
        added_capacity_bytes=node.capacity * n_nodes,
    )


def table_iv() -> list[PowerReport]:
    """All Table IV rows, in catalog (capacity) order."""
    return [memory_node_power(dimm) for dimm in DIMM_CATALOG]


def perf_per_watt_gain(speedup: float, dimm: DimmSpec,
                       n_nodes: int = 8) -> float:
    """Performance-per-watt improvement of MC-DLA over DC-DLA.

    Section V-C: a 2.8x speedup against a 7% (8 GB RDIMM) to 31%
    (128 GB LRDIMM) system power increase yields 2.6x to 2.1x perf/W.
    """
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    report = memory_node_power(dimm, n_nodes)
    return speedup / (1.0 + report.system_overhead)


def max_pool_capacity(node: MemoryNodeSpec, n_nodes: int = 8) -> int:
    """System-wide added memory pool (10.4 TB with 128 GB LRDIMMs)."""
    if n_nodes <= 0:
        raise ValueError("need at least one memory-node")
    return node.capacity * n_nodes
