"""Optional memory-node ASICs: compression and encryption units.

Figure 6 notes that "an ASIC that handles encryption or compression can
optionally be added to the memory-node".  These models let the design
space include such units: a compression engine shrinks migrated traffic
(activation sparsity compression, cDMA-style [56], averages 2.6x on
CNNs), an encryption engine adds a throughput ceiling and fixed latency
for at-rest protection of pooled tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GBPS, US


@dataclass(frozen=True)
class CompressionUnit:
    """Inline (de)compression on the memory-node's data path."""

    name: str = "cdma-compressor"
    #: Achieved compression ratio on migrated traffic (>= 1).
    ratio: float = 2.6
    #: Engine throughput ceiling on *uncompressed* data.
    throughput: float = 200 * GBPS

    def __post_init__(self) -> None:
        if self.ratio < 1.0:
            raise ValueError("compression ratio must be >= 1")
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")

    def wire_bytes(self, nbytes: float) -> float:
        """Bytes that actually cross the links."""
        if nbytes < 0:
            raise ValueError("negative size")
        return nbytes / self.ratio

    def transfer_time(self, nbytes: float, link_bw: float) -> float:
        """Compressed transfer: wire time, floored by engine rate."""
        if link_bw <= 0:
            raise ValueError("link bandwidth must be positive")
        if nbytes < 0:
            raise ValueError("negative size")
        if nbytes == 0:
            return 0.0
        return max(self.wire_bytes(nbytes) / link_bw,
                   nbytes / self.throughput)

    def effective_bandwidth(self, link_bw: float) -> float:
        """Apparent bandwidth uplift seen by the DMA engine."""
        if link_bw <= 0:
            raise ValueError("link bandwidth must be positive")
        return min(link_bw * self.ratio, self.throughput)


@dataclass(frozen=True)
class EncryptionUnit:
    """Inline AES-class encryption for pooled-memory confidentiality."""

    name: str = "aes-engine"
    throughput: float = 100 * GBPS
    latency: float = 0.5 * US

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        if self.latency < 0:
            raise ValueError("negative latency")

    def transfer_time(self, nbytes: float, link_bw: float) -> float:
        """Encrypted transfer: the slower of wire and cipher rates,
        plus the pipeline-fill latency."""
        if link_bw <= 0:
            raise ValueError("link bandwidth must be positive")
        if nbytes < 0:
            raise ValueError("negative size")
        if nbytes == 0:
            return 0.0
        return self.latency + nbytes / min(link_bw, self.throughput)

    def effective_bandwidth(self, link_bw: float) -> float:
        if link_bw <= 0:
            raise ValueError("link bandwidth must be positive")
        return min(link_bw, self.throughput)
