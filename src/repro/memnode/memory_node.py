"""The memory-node architecture (paper Figure 6, Section III-A).

A memory-node is a pooled-memory board sized like a PCIe accelerator:
N high-bandwidth links into the device-side interconnect, a protocol
engine, a DMA unit, a memory controller, and ten commodity DDR4 DIMMs.
The N links are partitioned into M groups; each group of N/M links is
exclusively owned by one device-node, and under MC-DLA's driver model
each node is split in half between its left and right neighbour device
(M = 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.link import NVLINK, LinkSpec
from repro.memnode.dimm import DDR4_128GB_LRDIMM, DimmSpec
from repro.memnode.dma import DmaEngine
from repro.units import GBPS


@dataclass(frozen=True)
class MemoryNodeSpec:
    """One memory-node board (Table II, lower half)."""

    name: str = "memory-node"
    dimm: DimmSpec = DDR4_128GB_LRDIMM
    n_dimms: int = 10
    #: Aggregate DIMM bandwidth exposed by the memory controller;
    #: Table II configures 256 GB/s (PC4-25600 x 10).
    memory_bandwidth: float = 256 * GBPS
    access_latency_cycles: int = 100
    n_links: int = 6
    link: LinkSpec = NVLINK
    #: Number of exclusive device groups the links are partitioned into.
    link_groups: int = 2
    dma: DmaEngine = field(default_factory=DmaEngine)

    def __post_init__(self) -> None:
        if self.n_dimms <= 0:
            raise ValueError("memory-node needs at least one DIMM")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory bandwidth must be positive")
        if self.n_links <= 0 or self.link_groups <= 0:
            raise ValueError("links and groups must be positive")
        if self.link_groups > self.n_links:
            raise ValueError("cannot have more groups (M) than links (N)")

    # -- Capacity and partitioning ------------------------------------------

    @property
    def capacity(self) -> int:
        """80 GB (8 GB RDIMMs) up to 1.3 TB (128 GB LRDIMMs)."""
        return self.dimm.capacity * self.n_dimms

    @property
    def links_per_group(self) -> int:
        """N/M links owned by each client device."""
        return self.n_links // self.link_groups

    @property
    def group_link_bw(self) -> float:
        """(N/M) x B GB/s a device's group of links can carry."""
        return self.links_per_group * self.link.uni_bw

    @property
    def group_capacity(self) -> int:
        """Bytes of the node's memory owned by one client device."""
        return self.capacity // self.link_groups

    @property
    def group_memory_bw(self) -> float:
        """DIMM bandwidth share available to one group."""
        return self.memory_bandwidth / self.link_groups

    def device_read_bandwidth(self) -> float:
        """Sustained bandwidth one client device sees from its group.

        The protocol engine saturates the group's links unless the DIMM
        share is the tighter bound.
        """
        return self.dma.effective_bandwidth(
            min(self.group_link_bw, self.group_memory_bw))

    def transfer_time(self, nbytes: float) -> float:
        """One bulk group transfer (DMA setup + bandwidth)."""
        return self.dma.transfer_time(nbytes, min(self.group_link_bw,
                                                  self.group_memory_bw))

    # -- Power ---------------------------------------------------------------

    @property
    def tdp_watts(self) -> float:
        """Node TDP: the DIMMs dominate (Table IV's accounting)."""
        return self.dimm.tdp_watts * self.n_dimms

    @property
    def gb_per_watt(self) -> float:
        return (self.capacity / (1024 ** 3)) / self.tdp_watts


def node_with_dimm(dimm: DimmSpec, n_dimms: int = 10) -> MemoryNodeSpec:
    """A Table II memory-node populated with the given DIMM type."""
    return MemoryNodeSpec(name=f"memnode-{dimm.name}", dimm=dimm,
                          n_dimms=n_dimms)
