"""Commodity DDR4 DIMM catalog (paper Table IV).

The memory-node is populated with capacity/density-optimized commodity
DIMMs: 8-16 GB registered DIMMs (RDIMM) up to 32-128 GB load-reduced
DIMMs (LRDIMM).  TDP figures follow the Samsung datasheets and Micron's
DDR4 system power calculator the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GB, GBPS


@dataclass(frozen=True)
class DimmSpec:
    """One DDR4 memory module."""

    name: str
    kind: str                # "RDIMM" or "LRDIMM"
    capacity: int            # bytes
    tdp_watts: float
    #: Per-DIMM peak bandwidth; PC4-17000 = 17 GB/s ... PC4-25600 =
    #: 25.6 GB/s per channel.
    bandwidth: float = 25.6 * GBPS

    def __post_init__(self) -> None:
        if self.kind not in ("RDIMM", "LRDIMM"):
            raise ValueError(f"{self.name}: unknown DIMM kind {self.kind}")
        if self.capacity <= 0 or self.tdp_watts <= 0 or self.bandwidth <= 0:
            raise ValueError(f"{self.name}: sizes must be positive")

    @property
    def capacity_gb(self) -> float:
        return self.capacity / GB

    @property
    def gb_per_watt(self) -> float:
        """Capacity efficiency, the paper's GB/W figure of merit."""
        return self.capacity_gb / self.tdp_watts


#: Table IV rows (Samsung DDR4-2400 modules).
DDR4_8GB_RDIMM = DimmSpec("8GB-RDIMM", "RDIMM", 8 * GB, 2.9)
DDR4_16GB_RDIMM = DimmSpec("16GB-RDIMM", "RDIMM", 16 * GB, 6.6)
DDR4_32GB_LRDIMM = DimmSpec("32GB-LRDIMM", "LRDIMM", 32 * GB, 8.7)
DDR4_64GB_LRDIMM = DimmSpec("64GB-LRDIMM", "LRDIMM", 64 * GB, 10.2)
DDR4_128GB_LRDIMM = DimmSpec("128GB-LRDIMM", "LRDIMM", 128 * GB, 12.7)

DIMM_CATALOG: tuple[DimmSpec, ...] = (
    DDR4_8GB_RDIMM, DDR4_16GB_RDIMM, DDR4_32GB_LRDIMM,
    DDR4_64GB_LRDIMM, DDR4_128GB_LRDIMM,
)


def dimm_by_name(name: str) -> DimmSpec:
    for spec in DIMM_CATALOG:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown DIMM {name!r}; "
                   f"known: {', '.join(d.name for d in DIMM_CATALOG)}")
