"""DMA engine model of the memory-node (Figure 6).

The DMA unit forwards a device-node's bulk transfer requests to the
memory controller.  Transfers are coarse-grained and deterministic, so
a fixed setup cost plus a bandwidth term models them faithfully
(Section IV's methodology discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import US


@dataclass(frozen=True)
class DmaEngine:
    """Bulk-transfer engine with setup overhead and a bandwidth cap."""

    name: str = "dma"
    setup_latency: float = 2.0 * US
    #: 0 means "no engine-side cap" (the path's link/DIMM bandwidth
    #: governs); otherwise the engine cannot exceed this rate.
    max_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.setup_latency < 0:
            raise ValueError("negative DMA setup latency")
        if self.max_bandwidth < 0:
            raise ValueError("negative DMA bandwidth cap")

    def effective_bandwidth(self, path_bandwidth: float) -> float:
        if path_bandwidth <= 0:
            raise ValueError("path bandwidth must be positive")
        if self.max_bandwidth:
            return min(path_bandwidth, self.max_bandwidth)
        return path_bandwidth

    def transfer_time(self, nbytes: float, path_bandwidth: float) -> float:
        """One bulk transfer over a path with the given bandwidth."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if nbytes == 0:
            return 0.0
        return (self.setup_latency
                + nbytes / self.effective_bandwidth(path_bandwidth))
