"""Memory-node substrate (paper Figure 6, Table IV, Section V-C)."""

from repro.memnode.dimm import (DDR4_8GB_RDIMM, DDR4_16GB_RDIMM,
                                DDR4_32GB_LRDIMM, DDR4_64GB_LRDIMM,
                                DDR4_128GB_LRDIMM, DIMM_CATALOG, DimmSpec,
                                dimm_by_name)
from repro.memnode.dma import DmaEngine
from repro.memnode.memory_node import MemoryNodeSpec, node_with_dimm
from repro.memnode.power import (DGX_DEVICE_COUNT, DGX_DEVICE_TDP_W,
                                 DGX_SYSTEM_TDP_W, PowerReport,
                                 max_pool_capacity, memory_node_power,
                                 perf_per_watt_gain, table_iv)

__all__ = [
    "DDR4_128GB_LRDIMM", "DDR4_16GB_RDIMM", "DDR4_32GB_LRDIMM",
    "DDR4_64GB_LRDIMM", "DDR4_8GB_RDIMM", "DGX_DEVICE_COUNT",
    "DGX_DEVICE_TDP_W", "DGX_SYSTEM_TDP_W", "DIMM_CATALOG", "DimmSpec",
    "DmaEngine", "MemoryNodeSpec", "PowerReport", "dimm_by_name",
    "max_pool_capacity", "memory_node_power", "node_with_dimm",
    "perf_per_watt_gain", "table_iv",
]
