"""The shipped claims suite: the paper's argument, executable.

Every headline result from the paper and from the repo's own studies
(cluster scheduling, serving, pipeline schedules, prefetch policies,
fault injection) is encoded as scenarios + claims, so ``python -m
repro claims`` verifies the whole thesis in one run and CI gates on
it.  Two scenario groups exercise axes *only* the DSL can spell:

* ``frontier/pim-*``: MC-DLA(B) with memory nodes absorbing 0/25/50%
  of eligible op traffic near the data;
* ``frontier/fleet-*``: heterogeneous gangs mixing Pascal- and
  Volta-generation devices, gated by the slowest member.

Thresholds are deliberately looser than the measured values (recorded
in ``tests/golden/claims.json``): a claim FAIL means the *shape* of a
result flipped, not that a scalar drifted within noise -- the golden
snapshot guards the scalars.

``paper_suite(quick=True)`` swaps the 96-cell evaluation grid for a
single-workload slice (dropping only the grid-wide harmonic-mean
claims whose thresholds need the full population) so CI smoke stays
fast; every other group is cheap enough to keep.
"""

from __future__ import annotations

from repro.dnn.registry import BENCHMARK_NAMES, CNN_NAMES
from repro.scenarios.claims import (Claim, at_least, at_most, dominates,
                                    monotone_in, ratio_at_least,
                                    ratio_dominates, within_pct)
from repro.scenarios.dsl import (DesignSpec, FleetSpec, Scenario,
                                 TrafficSpec, WorkloadSpec)
from repro.scenarios.runner import ClaimSuite
from repro.units import TB

#: The five buildable designs plus the oracle, in figure order.
DC = "DC-DLA"
HC = "HC-DLA"
MC_S = "MC-DLA(S)"
MC_L = "MC-DLA(L)"
MC_B = "MC-DLA(B)"
ORACLE = "DC-DLA(O)"

_GRID_DESIGNS = (DC, HC, MC_S, MC_L, MC_B, ORACLE)
_STRATS = {"dp": "data", "mp": "model"}


def _cell(design: str, network: str, strat: str) -> str:
    return f"{design}/{network}/{strat}"


def _cells(design: str, networks, strategies) -> tuple[str, ...]:
    return tuple(_cell(design, network, strat)
                 for strat in strategies for network in networks)


# ---------------------------------------------------------------------
# The paper's evaluation grid (Figures 11-13)
# ---------------------------------------------------------------------

def training_scenarios(networks=BENCHMARK_NAMES,
                       strategies=("dp", "mp")) -> list[Scenario]:
    return [
        Scenario(name=_cell(design, network, strat),
                 system=DesignSpec(design),
                 workload=WorkloadSpec(network=network,
                                       strategy=_STRATS[strat]))
        for strat in strategies
        for network in networks
        for design in _GRID_DESIGNS
    ]


def training_claims(networks=BENCHMARK_NAMES,
                    strategies=("dp", "mp")) -> list[Claim]:
    """Per-cell structural claims: valid on any grid slice."""
    dc = _cells(DC, networks, strategies)
    mc_b = _cells(MC_B, networks, strategies)
    oracle = _cells(ORACLE, networks, strategies)
    every = [_cells(d, networks, strategies) for d in _GRID_DESIGNS]
    all_cells = tuple(cell for cells in every for cell in cells)
    claims: list[Claim] = [
        ratio_at_least(
            name="every-workload-benefits", metric="iteration_time",
            numerators=dc, denominators=mc_b,
            threshold=1.4, aggregate="min"),
        dominates(
            name="oracle-bounds-everything", metric="iteration_time",
            winners=oracle * len(_GRID_DESIGNS), losers=all_cells,
            sense="min", tolerance=1e-12),
        dominates(
            name="dc-cheapest-sync", metric="breakdown.sync",
            winners=dc * 3,
            losers=(_cells(HC, networks, strategies)
                    + _cells(MC_S, networks, strategies) + mc_b),
            sense="min", tolerance=1e-12),
        at_most(
            name="mc-never-touches-host",
            metric="host_traffic_bytes_per_device",
            scenarios=(_cells(MC_S, networks, strategies)
                       + _cells(MC_L, networks, strategies)
                       + mc_b + oracle),
            bound=0.0),
    ]
    for strat in strategies:
        for network in networks:
            if network not in CNN_NAMES:
                continue
            claims.append(within_pct(
                name=f"byte-conservation/{network}/{strat}",
                metric="offload_bytes_per_device",
                scenarios=tuple(_cell(d, network, strat)
                                for d in (HC, MC_S, MC_L, MC_B)),
                reference=_cell(DC, network, strat), pct=0.0))
    return claims


def headline_claims() -> list[Claim]:
    """Grid-wide harmonic-mean claims (need the full 96 cells)."""
    networks, strategies = BENCHMARK_NAMES, ("dp", "mp")
    dc = _cells(DC, networks, strategies)
    mc_b = _cells(MC_B, networks, strategies)
    dc_dp = _cells(DC, networks, ("dp",))
    dc_mp = _cells(DC, networks, ("mp",))
    return [
        ratio_at_least(
            name="overall-speedup-near-2.8x",
            metric="iteration_time", numerators=dc,
            denominators=mc_b, threshold=2.0, at_most=3.8,
            aggregate="hmean"),
        ratio_dominates(
            name="dp-gains-exceed-mp", metric="iteration_time",
            numerators_a=dc_dp,
            denominators_a=_cells(MC_B, networks, ("dp",)),
            numerators_b=dc_mp,
            denominators_b=_cells(MC_B, networks, ("mp",)),
            factor=1.0, strict=True),
        ratio_at_least(
            name="mp-speedup-above-1.5x", metric="iteration_time",
            numerators=dc_mp,
            denominators=_cells(MC_B, networks, ("mp",)),
            threshold=1.5, aggregate="hmean"),
        ratio_dominates(
            name="mc-beats-hc", metric="iteration_time",
            numerators_a=dc, denominators_a=mc_b,
            numerators_b=dc,
            denominators_b=_cells(HC, networks, strategies),
            factor=1.0, strict=True),
        ratio_at_least(
            name="hc-helps-data-parallel", metric="iteration_time",
            numerators=dc_dp,
            denominators=_cells(HC, networks, ("dp",)),
            threshold=1.0, aggregate="hmean", strict=True),
        ratio_dominates(
            name="local-within-reach-of-bw-aware",
            metric="iteration_time",
            numerators_a=dc,
            denominators_a=_cells(MC_L, networks, strategies),
            numerators_b=dc, denominators_b=mc_b,
            factor=0.85, at_most=1.0),
        ratio_at_least(
            name="mc-b-within-reach-of-oracle",
            metric="iteration_time",
            numerators=_cells(ORACLE, networks, strategies),
            denominators=mc_b, threshold=0.8, aggregate="hmean"),
        ratio_at_least(
            name="mc-b-near-oracle-somewhere",
            metric="iteration_time",
            numerators=_cells(ORACLE, networks, strategies),
            denominators=mc_b, threshold=0.95, aggregate="max"),
        at_least(
            name="dc-vmem-bound-most-cells",
            metric="breakdown.vmem_share",
            scenarios=_cells(DC, networks, strategies),
            bound=0.5, min_count=10),
        at_most(
            name="cnn-capacity-wall",
            metric="fits_in_device_memory",
            scenarios=tuple(_cell(DC, network, "dp")
                            for network in ("VGG-E", "ResNet",
                                            "GoogLeNet")),
            bound=0.0),
    ]


def ordering_claims() -> list[Claim]:
    """The MC interconnect/placement ordering, per strategy."""
    networks = BENCHMARK_NAMES
    claims: list[Claim] = []
    for strat in ("dp", "mp"):
        dc = _cells(DC, networks, (strat,))
        for better, worse in ((MC_B, MC_L), (MC_L, MC_S)):
            claims.append(ratio_dominates(
                name=f"{better}-beats-{worse}/{strat}",
                metric="iteration_time",
                numerators_a=dc,
                denominators_a=_cells(better, networks, (strat,)),
                numerators_b=dc,
                denominators_b=_cells(worse, networks, (strat,)),
                factor=1.0, strict=True))
    return claims


# ---------------------------------------------------------------------
# Cluster scheduling (equal pool capacity, PR 4)
# ---------------------------------------------------------------------

def cluster_scenarios() -> list[Scenario]:
    return [
        Scenario(name=f"{design}/fleet", system=DesignSpec(design),
                 fleet=FleetSpec(policy="fifo", job_mix="balanced",
                                 n_jobs=20, seed=0, arrival_rate=0.05,
                                 fleet_devices=16,
                                 pool_capacity=1 * TB))
        for design in (DC, MC_S, MC_L, MC_B)
    ]


def cluster_claims() -> list[Claim]:
    return [
        ratio_at_least(
            name="mc-jct-p95-dominance", metric="cluster.jct_p95",
            numerators=(f"{DC}/fleet",),
            denominators=(f"{MC_S}/fleet", f"{MC_L}/fleet",
                          f"{MC_B}/fleet"),
            threshold=4.0, aggregate="min"),
    ]


# ---------------------------------------------------------------------
# Serving under load (PR 3): the SLO knee separates the designs
# ---------------------------------------------------------------------

_SERVE_RATE = 1600.0


def serving_scenarios() -> list[Scenario]:
    return [
        Scenario(name=f"{design}/GPT2/serve",
                 system=DesignSpec(design),
                 workload=WorkloadSpec(network="GPT2"),
                 traffic=TrafficSpec(rate=_SERVE_RATE))
        for design in (DC, MC_B)
    ]


def serving_claims() -> list[Claim]:
    return [
        ratio_at_least(
            name="serving-goodput-separation",
            metric="serving.goodput",
            numerators=(f"{MC_B}/GPT2/serve",),
            denominators=(f"{DC}/GPT2/serve",), threshold=10.0),
        at_least(
            name="mc-above-slo-knee", metric="serving.slo_attainment",
            scenarios=(f"{MC_B}/GPT2/serve",), bound=0.99),
        at_most(
            name="dc-below-slo-knee", metric="serving.slo_attainment",
            scenarios=(f"{DC}/GPT2/serve",), bound=0.2),
    ]


# ---------------------------------------------------------------------
# Pipeline schedules (PR 2): bubbles shrink with memory-centric vmem
# ---------------------------------------------------------------------

def pipeline_scenarios() -> list[Scenario]:
    return [
        Scenario(name=f"{design}/GPT2/pp-{schedule}",
                 system=DesignSpec(design),
                 workload=WorkloadSpec(network="GPT2", batch=64,
                                       strategy="pipeline",
                                       microbatches=8,
                                       schedule=schedule))
        for design in (DC, MC_B)
        for schedule in ("gpipe", "1f1b")
    ]


def pipeline_claims() -> list[Claim]:
    return [
        dominates(
            name="1f1b-beats-gpipe", metric="pipeline.bubble_time",
            winners=(f"{DC}/GPT2/pp-1f1b", f"{MC_B}/GPT2/pp-1f1b"),
            losers=(f"{DC}/GPT2/pp-gpipe", f"{MC_B}/GPT2/pp-gpipe"),
            sense="min"),
        ratio_at_least(
            name="mc-shrinks-pipeline-bubble",
            metric="pipeline.bubble_time",
            numerators=(f"{DC}/GPT2/pp-gpipe", f"{DC}/GPT2/pp-1f1b"),
            denominators=(f"{MC_B}/GPT2/pp-gpipe",
                          f"{MC_B}/GPT2/pp-1f1b"),
            threshold=3.0, aggregate="min"),
        at_least(
            name="dc-pipeline-mostly-bubble",
            metric="pipeline.bubble_fraction",
            scenarios=(f"{DC}/GPT2/pp-gpipe", f"{DC}/GPT2/pp-1f1b"),
            bound=0.8),
        at_most(
            name="mc-pipeline-mostly-busy",
            metric="pipeline.bubble_fraction",
            scenarios=(f"{MC_B}/GPT2/pp-gpipe",
                       f"{MC_B}/GPT2/pp-1f1b"),
            bound=0.7),
    ]


# ---------------------------------------------------------------------
# Zero-bubble pipeline schedules: deferred W work fills 1F1B's idle
# ---------------------------------------------------------------------

_TRANSFORMERS = ("GPT2", "BERT-Large")
_ZB_SCHEDULES = ("1f1b", "zb-h1", "interleaved", "zb-auto")


def _zb_cell(design: str, network: str, schedule: str) -> str:
    return f"{design}/{network}/zbpp-{schedule}"


def _zb_cells(schedule: str) -> tuple[str, ...]:
    return tuple(_zb_cell(design, network, schedule)
                 for design in _GRID_DESIGNS
                 for network in _TRANSFORMERS)


def zero_bubble_scenarios() -> list[Scenario]:
    """Every design x transformer cell under each pipeline schedule."""
    return [
        Scenario(name=_zb_cell(design, network, schedule),
                 system=DesignSpec(design),
                 workload=WorkloadSpec(network=network, batch=64,
                                       strategy="pipeline",
                                       microbatches=8,
                                       schedule=schedule))
        for design in _GRID_DESIGNS
        for network in _TRANSFORMERS
        for schedule in _ZB_SCHEDULES
    ]


def zero_bubble_claims() -> list[Claim]:
    return [
        # The headline: the searched zero-bubble schedule strictly
        # lowers the bubble fraction on every design x transformer
        # cell (ratio of 1F1B over zb-auto strictly above 1).
        ratio_at_least(
            name="zero-bubble-beats-1f1b",
            metric="pipeline.bubble_fraction",
            numerators=_zb_cells("1f1b"),
            denominators=_zb_cells("zb-auto"),
            threshold=1.0, aggregate="min", strict=True),
        # The fixed ZB-H1 heuristic never loses to 1F1B (it ties on
        # the offload-stall-dominated DC cells, hence the tolerance).
        dominates(
            name="zb-h1-never-worse-than-1f1b",
            metric="pipeline.bubble_fraction",
            winners=_zb_cells("zb-h1"), losers=_zb_cells("1f1b"),
            sense="min", tolerance=1e-9),
        # The auto-scheduler only ever improves on its starting point.
        dominates(
            name="zb-auto-at-least-zb-h1",
            metric="pipeline.bubble_fraction",
            winners=_zb_cells("zb-auto"), losers=_zb_cells("zb-h1"),
            sense="min", tolerance=1e-9),
        # Splitting actually banks W work to fill with.
        at_least(
            name="zb-defers-wgrad-work",
            metric="pipeline.wgrad_time",
            scenarios=_zb_cells("zb-auto"), bound=1e-6),
        # Interleaved virtual stages shine where stages are
        # memory-resident and deep: BERT on the bandwidth-aware MC
        # designs.
        dominates(
            name="interleaved-wins-on-bert-mc",
            metric="pipeline.bubble_fraction",
            winners=(_zb_cell(MC_B, "BERT-Large", "interleaved"),
                     _zb_cell(ORACLE, "BERT-Large", "interleaved")),
            losers=(_zb_cell(MC_B, "BERT-Large", "1f1b"),
                    _zb_cell(ORACLE, "BERT-Large", "1f1b")),
            sense="min"),
    ]


def zero_bubble_suite() -> ClaimSuite:
    """The zero-bubble study alone (golden-snapshot surface)."""
    return ClaimSuite(
        name="zero-bubble",
        scenarios=tuple(zero_bubble_scenarios()),
        claims=tuple(zero_bubble_claims()))


# ---------------------------------------------------------------------
# Prefetch policies (PR 5): the clairvoyant oracle dominates
# ---------------------------------------------------------------------

_PF_POLICIES = ("on-demand", "stride", "cost-model", "clairvoyant")


def prefetch_scenarios() -> list[Scenario]:
    return [
        Scenario(name=f"{MC_B}/VGG-E/pf-{policy}",
                 system=DesignSpec(MC_B),
                 workload=WorkloadSpec(network="VGG-E"),
                 prefetch_policy=policy)
        for policy in _PF_POLICIES
    ]


def prefetch_claims() -> list[Claim]:
    clairvoyant = f"{MC_B}/VGG-E/pf-clairvoyant"
    others = tuple(f"{MC_B}/VGG-E/pf-{policy}"
                   for policy in _PF_POLICIES[:-1])
    return [
        dominates(
            name="clairvoyant-prefetch-dominates",
            metric="prefetch.stall_seconds",
            winners=(clairvoyant,), losers=others, sense="min"),
        ratio_at_least(
            name="prefetch-pays", metric="prefetch.stall_seconds",
            numerators=(f"{MC_B}/VGG-E/pf-on-demand",),
            denominators=(clairvoyant,), threshold=10.0),
    ]


# ---------------------------------------------------------------------
# Fault injection (PR 8): graceful degradation floors
# ---------------------------------------------------------------------

_FAULTS = ("flaky-link", "degraded-link", "straggler", "node-loss",
           "storm")


def fault_scenarios() -> list[Scenario]:
    scenarios = [
        Scenario(name=f"{MC_B}/VGG-E/fault-{model}",
                 system=DesignSpec(MC_B),
                 workload=WorkloadSpec(network="VGG-E"),
                 fault_model=model)
        for model in _FAULTS
    ]
    scenarios.append(Scenario(
        name=f"{DC}/VGG-E/fault-degraded-link",
        system=DesignSpec(DC),
        workload=WorkloadSpec(network="VGG-E"),
        fault_model="degraded-link"))
    return scenarios


def fault_claims() -> list[Claim]:
    mc_faults = tuple(f"{MC_B}/VGG-E/fault-{model}"
                      for model in _FAULTS)
    return [
        at_least(
            name="availability-floors", metric="faults.availability",
            scenarios=mc_faults, bound=0.6),
        at_most(
            name="bounded-fault-slowdown", metric="faults.slowdown",
            scenarios=mc_faults, bound=2.5),
        dominates(
            name="mc-degrades-more-gracefully",
            metric="faults.availability",
            winners=(f"{MC_B}/VGG-E/fault-degraded-link",),
            losers=(f"{DC}/VGG-E/fault-degraded-link",),
            sense="max"),
    ]


# ---------------------------------------------------------------------
# Frontier: DSL-only axes (no CLI flag reaches these)
# ---------------------------------------------------------------------

_PIM_FRACTIONS = (0.0, 0.25, 0.5)
_HETERO_MIXES = (
    ("volta", (("Volta", 8),)),
    ("mixed", (("Pascal", 4), ("Volta", 4))),
    ("pascal", (("Pascal", 8),)),
)


def frontier_scenarios() -> list[Scenario]:
    scenarios = [
        Scenario(name=f"{MC_B}/VGG-E/pim{fraction:g}",
                 system=DesignSpec(MC_B, pim_fraction=fraction),
                 workload=WorkloadSpec(network="VGG-E"))
        for fraction in _PIM_FRACTIONS
    ]
    scenarios += [
        Scenario(name=f"{MC_B}/VGG-E/fleet-{label}",
                 system=DesignSpec(MC_B, device_mix=mix),
                 workload=WorkloadSpec(network="VGG-E"))
        for label, mix in _HETERO_MIXES
    ]
    return scenarios


def frontier_claims() -> list[Claim]:
    pim = tuple(f"{MC_B}/VGG-E/pim{fraction:g}"
                for fraction in _PIM_FRACTIONS)
    fleets = tuple(f"{MC_B}/VGG-E/fleet-{label}"
                   for label, _ in _HETERO_MIXES)
    return [
        monotone_in(
            name="pim-offload-never-hurts", metric="iteration_time",
            scenarios=pim, direction="non-increasing", strict=True),
        ratio_at_least(
            name="pim-pays", metric="iteration_time",
            numerators=(pim[0],), denominators=(pim[-1],),
            threshold=1.05),
        monotone_in(
            name="hetero-worst-member-gates",
            metric="iteration_time", scenarios=fleets,
            direction="non-decreasing"),
        ratio_at_least(
            name="hetero-generation-gap", metric="iteration_time",
            numerators=(fleets[-1],), denominators=(fleets[0],),
            threshold=2.0),
    ]


# ---------------------------------------------------------------------
# The shipped suites
# ---------------------------------------------------------------------

def paper_training_suite() -> ClaimSuite:
    """The 96-cell evaluation grid alone (the integration tests'
    dogfood surface)."""
    return ClaimSuite(
        name="paper-training",
        scenarios=tuple(training_scenarios()),
        claims=tuple(headline_claims() + ordering_claims()
                     + training_claims()))


def paper_suite(quick: bool = False) -> ClaimSuite:
    """Every shipped claim; ``quick`` slices the evaluation grid down
    to one workload (and drops the grid-wide mean claims)."""
    if quick:
        networks, strategies = ("AlexNet",), ("dp",)
        scenarios = training_scenarios(networks, strategies)
        claims = training_claims(networks, strategies)
    else:
        scenarios = training_scenarios()
        claims = (headline_claims() + ordering_claims()
                  + training_claims())
    scenarios += (cluster_scenarios() + serving_scenarios()
                  + pipeline_scenarios() + prefetch_scenarios()
                  + fault_scenarios() + frontier_scenarios())
    claims += (cluster_claims() + serving_claims()
               + pipeline_claims() + prefetch_claims()
               + fault_claims() + frontier_claims())
    if not quick:
        # The 48-cell zero-bubble study rides only the full suite so
        # the quick CI smoke stays at its 32-cell budget.
        scenarios += zero_bubble_scenarios()
        claims += zero_bubble_claims()
    return ClaimSuite(
        name="paper-claims-quick" if quick else "paper-claims",
        scenarios=tuple(scenarios), claims=tuple(claims))
