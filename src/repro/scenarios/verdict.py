"""Verdicts and their deterministic renderings.

A :class:`Verdict` is one claim's outcome: PASS/FAIL against the
claimed relation, or ERROR when the claim could not be evaluated at
all (a scenario failed to simulate, a metric path did not resolve).
``measured`` is the claim's scalar statistic, ``expected`` the claimed
relation, and ``margin`` the slack inside the bound (positive = safe,
negative = violated) -- so regressions show *how far* a claim moved,
not just that it flipped.

All three renderings are byte-deterministic: floats print through
``repr``-exact JSON or a fixed ``%.6g`` table format, and row order
follows the suite's claim order.
"""

from __future__ import annotations

import csv
import enum
import io
import json
from dataclasses import dataclass

from repro.experiments.report import format_table


class Status(enum.Enum):
    PASS = "PASS"
    FAIL = "FAIL"
    ERROR = "ERROR"


@dataclass(frozen=True)
class Verdict:
    """One claim's measured-vs-expected outcome."""

    claim: str
    status: Status
    #: The claim's scalar statistic (None when evaluation errored).
    measured: float | None
    #: Human-readable claimed relation, e.g. ``"hmean(ratio) >= 2"``.
    expected: str
    #: Slack inside the bound; positive means the claim holds with
    #: room, negative by how much it is violated.
    margin: float | None = None
    #: Worst-case context (offending scenario/pair) or error text.
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is Status.PASS

    def to_dict(self) -> dict:
        return {
            "claim": self.claim,
            "status": self.status.value,
            "measured": self.measured,
            "expected": self.expected,
            "margin": self.margin,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class SuiteReport:
    """Every verdict of one suite run, in claim order."""

    suite: str
    verdicts: tuple[Verdict, ...]
    #: ``(scenario name, fingerprint)`` in suite order.
    fingerprints: tuple[tuple[str, str], ...] = ()
    n_cells: int = 0
    cached: int = 0

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def counts(self) -> dict[str, int]:
        out = {status.value: 0 for status in Status}
        for verdict in self.verdicts:
            out[verdict.status.value] += 1
        return out

    def verdict(self, claim: str) -> Verdict:
        for verdict in self.verdicts:
            if verdict.claim == claim:
                return verdict
        raise KeyError(f"no verdict for claim {claim!r}")

    def summary(self) -> str:
        counts = self.counts
        return (f"{self.suite}: {len(self.verdicts)} claims: "
                f"{counts['PASS']} PASS, {counts['FAIL']} FAIL, "
                f"{counts['ERROR']} ERROR "
                f"({self.n_cells} cells, {self.cached} cached)")

    def scalars(self) -> dict:
        """Golden-snapshot image: status + statistic per claim."""
        out: dict = {}
        for verdict in self.verdicts:
            out[f"{verdict.claim}.status"] = verdict.status.value
            out[f"{verdict.claim}.measured"] = verdict.measured
        return out


def _fmt(value: float | None) -> str:
    if value is None:
        return "-"
    return format(value, ".6g")


def render_text(report: SuiteReport) -> str:
    """The verdict table plus a one-line summary."""
    rows = [[v.claim, v.status.value, _fmt(v.measured), v.expected,
             _fmt(v.margin), v.detail]
            for v in report.verdicts]
    table = format_table(
        ["claim", "status", "measured", "expected", "margin",
         "detail"],
        rows, title=f"claims: {report.suite}")
    return f"{table}\n{report.summary()}"


def render_csv(report: SuiteReport) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(["claim", "status", "measured", "expected",
                     "margin", "detail"])
    for v in report.verdicts:
        writer.writerow([
            v.claim, v.status.value,
            "" if v.measured is None else repr(v.measured),
            v.expected,
            "" if v.margin is None else repr(v.margin),
            v.detail])
    return out.getvalue()


def render_json(report: SuiteReport) -> str:
    """Byte-deterministic JSON: no wall-clock, no cache-hit counts."""
    payload = {
        "suite": report.suite,
        "counts": report.counts,
        "scenarios": {name: fingerprint
                      for name, fingerprint in report.fingerprints},
        "verdicts": [v.to_dict() for v in report.verdicts],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
