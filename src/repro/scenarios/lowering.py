"""Lower scenarios onto the campaign engine.

:func:`lower_scenario` maps one :class:`~repro.scenarios.dsl.Scenario`
to a :class:`~repro.campaign.points.CampaignPoint` whose factory is
:func:`scenario_design_point` -- a module-level (hence pool-picklable)
wrapper over :func:`repro.core.design_points.design_point` that also
realizes the two DSL-only axes:

* ``device_mix`` builds a *worst-member composite* device: weak-scaling
  gangs synchronize every iteration, so a mixed fleet runs each
  resource (MACs, HBM bandwidth/latency/capacity) at the pace of its
  slowest generation.  The fleet width becomes the sum of the counts.
* ``pim_fraction`` moves a fraction ``f`` of eligible bandwidth-bound
  op traffic into the memory nodes, which stream it at near-bank
  internal bandwidth (:data:`PIM_INTERNAL_AMPLIFICATION` x the node's
  external DIMM bandwidth).  On the device roofline this is an
  effective-HBM-bandwidth scale of ``1 / max(1 - f, f * hbm / pim)``:
  the device leg keeps ``1 - f`` of the stream while the PIM leg
  finishes its ``f`` share in parallel, so the benefit saturates at
  the knee ``f* = pim / (pim + hbm)`` and degrades past it (the slow
  internal units become the critical path).

Because the factory's kwargs carry the mix and PIM knobs, the campaign
cache key (``point.describe(factory)``) embeds the *built* composite
config -- scenarios that differ in any DSL axis can never replay each
other's cached cells.
"""

from __future__ import annotations

import dataclasses

from repro.accelerator.device import DeviceSpec
from repro.accelerator.generations import generation
from repro.campaign.points import CampaignPoint
from repro.core.design_points import design_point
from repro.core.system import SystemConfig
from repro.scenarios.dsl import Scenario
from repro.training.parallel import ParallelStrategy

#: Near-bank internal bandwidth of the memory node, as a multiple of
#: its external (memory-controller) bandwidth.  Ten DIMMs of rank- and
#: bank-group-parallel near-data units stream without sharing the
#: controller bottleneck; 8x over the 256 GB/s external figure gives
#: the 2 TB/s-class internal headroom the PIM literature reports.
PIM_INTERNAL_AMPLIFICATION = 8.0

_STRATEGIES = {
    "data": ParallelStrategy.DATA,
    "model": ParallelStrategy.MODEL,
    "pipeline": ParallelStrategy.PIPELINE,
}


def composite_device(device_mix) -> DeviceSpec:
    """The worst-member composite of a heterogeneous gang.

    Every resource runs at the slowest member's pace: the PE array of
    the lowest-throughput generation, and an HBM taking the minimum
    bandwidth/capacity and maximum latency across members.
    """
    if not device_mix:
        raise ValueError("device_mix must name at least one generation")
    members = [generation(name) for name, _ in device_mix]
    worst = min(members, key=lambda d: d.pe_array.peak_macs_per_sec)
    label = "+".join(f"{name}x{count}" for name, count in device_mix)
    hbm = dataclasses.replace(
        worst.hbm,
        name=f"mix({label})-mem",
        bandwidth=min(d.hbm.bandwidth for d in members),
        access_latency_cycles=max(d.hbm.access_latency_cycles
                                  for d in members),
        capacity=min(d.hbm.capacity for d in members))
    return dataclasses.replace(worst, name=f"mix({label})", hbm=hbm)


def pim_bandwidth_scale(fraction: float, hbm_bw: float,
                        pim_bw: float) -> float:
    """Effective HBM bandwidth multiplier at PIM offload ``fraction``."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("pim_fraction must lie in [0, 1)")
    if fraction == 0.0:
        return 1.0
    return 1.0 / max(1.0 - fraction, fraction * hbm_bw / pim_bw)


def with_pim(config: SystemConfig, fraction: float) -> SystemConfig:
    """Offload ``fraction`` of eligible op traffic into memory nodes."""
    if fraction == 0.0:
        return config
    node = config.memory_node
    if node is None:
        raise ValueError(
            f"pim_fraction needs a memory-node design; "
            f"{config.name} has no memory nodes")
    hbm = config.device.hbm
    scale = pim_bandwidth_scale(
        fraction, hbm.bandwidth,
        node.memory_bandwidth * PIM_INTERNAL_AMPLIFICATION)
    device = dataclasses.replace(
        config.device,
        name=f"{config.device.name}+pim{fraction:g}",
        hbm=dataclasses.replace(hbm, name=f"{hbm.name}+pim",
                                bandwidth=hbm.bandwidth * scale))
    return dataclasses.replace(config, device=device)


def scenario_design_point(name: str, *, device_mix=(),
                          pim_fraction: float = 0.0,
                          **kwargs) -> SystemConfig:
    """The scenario factory: ``design_point`` plus the DSL-only axes.

    Module-level and picklable, so scenario campaigns fan out across
    pool workers exactly like CLI campaigns do.
    """
    device_mix = tuple((str(gen), int(count))
                       for gen, count in device_mix)
    if device_mix:
        kwargs.setdefault("n_devices",
                          sum(count for _, count in device_mix))
        kwargs.setdefault("device", composite_device(device_mix))
    config = design_point(name, **kwargs)
    return with_pim(config, pim_fraction)


def lower_scenario(scenario: Scenario) -> CampaignPoint:
    """Map one scenario to its campaign point (factory kwargs, config
    replacements, and the serving/cluster knob tuples)."""
    system = scenario.system
    overrides = tuple(system.overrides)
    if system.device_mix:
        overrides += (("device_mix", system.device_mix),)
    if system.pim_fraction:
        overrides += (("pim_fraction", system.pim_fraction),)

    replacements = tuple(system.replacements)
    if scenario.fault_model != "none":
        replacements += (("fault_model", scenario.fault_model),)
    if scenario.prefetch_policy is not None:
        replacements += (("prefetch_policy", scenario.prefetch_policy),)

    fleet = scenario.fleet
    if fleet is not None:
        knobs = [
            ("arrival_rate", float(fleet.arrival_rate)),
            ("fleet_devices", fleet.fleet_devices),
            ("job_mix", fleet.job_mix),
            ("n_jobs", fleet.n_jobs),
            ("oversubscription", float(fleet.oversubscription)),
            ("policy", fleet.policy),
            ("seed", fleet.seed),
        ]
        if fleet.pool_capacity is not None:
            knobs.append(("pool_capacity", fleet.pool_capacity))
        if fleet.preempt_after is not None:
            knobs.append(("preempt_after", float(fleet.preempt_after)))
        return CampaignPoint(
            design=system.design, network=f"mix:{fleet.job_mix}",
            batch=fleet.n_jobs, strategy=ParallelStrategy.DATA,
            overrides=overrides, replacements=replacements,
            cluster=tuple(knobs), label=scenario.name)

    workload = scenario.workload
    traffic = scenario.traffic
    if traffic is not None:
        serving = (
            ("arrival", traffic.arrival),
            ("batcher", traffic.batcher),
            ("max_batch", traffic.max_batch),
            ("max_wait", traffic.max_wait_ms / 1e3),
            ("n_requests", traffic.n_requests),
            ("rate", float(traffic.rate)),
            ("seed", traffic.seed),
            ("slo", traffic.slo_ms / 1e3),
        )
        return CampaignPoint(
            design=system.design, network=workload.network,
            batch=traffic.max_batch, strategy=ParallelStrategy.DATA,
            overrides=overrides, replacements=replacements,
            serving=serving, label=scenario.name)

    strategy = _STRATEGIES[workload.strategy]
    if strategy is ParallelStrategy.PIPELINE:
        replacements += (
            ("pipeline_microbatches", workload.microbatches),
            ("pipeline_schedule", workload.schedule),
            ("pipeline_stages", workload.stages),
        )
    return CampaignPoint(
        design=system.design, network=workload.network,
        batch=workload.batch, strategy=strategy,
        overrides=overrides, replacements=replacements,
        label=scenario.name)
