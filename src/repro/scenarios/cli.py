"""``python -m repro claims``: run the shipped claims suite.

Renders the verdict table (text, CSV, or byte-deterministic JSON) and
exits nonzero when any claim FAILs or ERRORs, so CI can gate on the
paper's argument directly.  The run summary goes to stderr; results go
to stdout (or ``-o``).
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.cache import ResultCache
from repro.scenarios.paper import paper_suite
from repro.scenarios.runner import run_suite
from repro.scenarios.verdict import render_csv, render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro claims",
        description="evaluate the shipped paper-claims suite")
    parser.add_argument(
        "--quick", action="store_true",
        help="slice the evaluation grid to one workload (CI smoke)")
    parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="verdict rendering (default: table)")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the rendering to a file instead of stdout")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the scenario cells (default: 1)")
    parser.add_argument(
        "--cache-dir", default=None,
        help="campaign result cache directory "
             "(default: $REPRO_CACHE_DIR if set)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="simulate every cell even when cached")
    parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="print scenario names + fingerprints and exit")
    return parser


def main(argv: list[str] | None = None, *,
         suite_factory=paper_suite) -> int:
    args = build_parser().parse_args(argv)
    if args.jobs < 1:
        print("claims: --jobs must be >= 1", file=sys.stderr)
        return 2

    suite = suite_factory(quick=args.quick)

    if args.list_scenarios:
        for scenario in suite.scenarios:
            print(f"{scenario.fingerprint()}  {scenario.name}")
        print(f"{suite.name}: {len(suite.scenarios)} scenarios, "
              f"{len(suite.claims)} claims", file=sys.stderr)
        return 0

    cache = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache = ResultCache(args.cache_dir)
        else:
            cache = ResultCache.from_env()

    report = run_suite(suite, jobs=args.jobs, cache=cache)
    render = {"table": render_text, "csv": render_csv,
              "json": render_json}[args.format]
    text = render(report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    print(report.summary(), file=sys.stderr)
    return 0 if report.ok else 1
