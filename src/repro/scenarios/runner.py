"""Execute claim suites through the campaign engine.

:func:`run_suite` lowers every scenario to a campaign point, fans the
cells out through :func:`repro.campaign.runner.run_campaign` (same
process pool, same content-addressed cache as CLI campaigns), then
evaluates the suite's claims against the per-scenario results.  A
scenario that fails to simulate does not abort the run: every claim
binding it reports ERROR with the cell's error text, and unrelated
claims still evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.campaign.cache import ResultCache
from repro.campaign.runner import ProgressFn, run_campaign
from repro.core.metrics import SimulationResult
from repro.scenarios.claims import Claim, evaluate_claims
from repro.scenarios.dsl import Scenario
from repro.scenarios.lowering import lower_scenario, scenario_design_point
from repro.scenarios.verdict import SuiteReport


class ScenarioExecutionError(RuntimeError):
    """A claim bound a scenario whose cell failed (or is unknown)."""


@dataclass(frozen=True)
class ClaimSuite:
    """Named scenarios plus the claims that bind them."""

    name: str
    scenarios: tuple[Scenario, ...]
    claims: tuple[Claim, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "claims", tuple(self.claims))
        names = [s.name for s in self.scenarios]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(f"suite {self.name!r}: duplicate "
                             f"scenario name(s): {', '.join(sorted(dupes))}")
        claim_names = [c.name for c in self.claims]
        dupes = {n for n in claim_names if claim_names.count(n) > 1}
        if dupes:
            raise ValueError(f"suite {self.name!r}: duplicate "
                             f"claim name(s): {', '.join(sorted(dupes))}")
        known = set(names)
        for claim in self.claims:
            missing = sorted(set(claim.scenario_names()) - known)
            if missing:
                raise ValueError(
                    f"suite {self.name!r}: claim {claim.name!r} "
                    f"binds undeclared scenario(s): "
                    f"{', '.join(missing)}")

    def scenario(self, name: str) -> Scenario:
        for scenario in self.scenarios:
            if scenario.name == name:
                return scenario
        raise KeyError(f"no scenario named {name!r}")


def run_suite(suite: ClaimSuite, *, jobs: int = 1,
              cache: ResultCache | None = None,
              progress: ProgressFn | None = None) -> SuiteReport:
    """Simulate every scenario and evaluate every claim."""
    points = [lower_scenario(s) for s in suite.scenarios]
    report = run_campaign(points, jobs=jobs, cache=cache,
                          factory=scenario_design_point,
                          progress=progress)
    results: dict[str, SimulationResult] = {}
    errors: dict[str, str] = {}
    for scenario, outcome in zip(suite.scenarios, report.outcomes):
        if outcome.ok:
            results[scenario.name] = outcome.result
        else:
            errors[scenario.name] = outcome.error or "unknown error"

    def lookup(name: str) -> SimulationResult:
        if name in errors:
            raise ScenarioExecutionError(
                f"scenario {name!r} failed: {errors[name]}")
        try:
            return results[name]
        except KeyError:
            raise ScenarioExecutionError(
                f"unknown scenario {name!r}") from None

    verdicts = evaluate_claims(suite.claims, lookup)
    fingerprints = tuple((s.name, s.fingerprint())
                         for s in suite.scenarios)
    return SuiteReport(
        suite=suite.name, verdicts=verdicts,
        fingerprints=fingerprints, n_cells=len(points),
        cached=report.cached_count)
