"""Executable scenarios and claims: the paper's argument as code.

``repro.scenarios`` declares simulation cells as frozen DSL statements
(:mod:`~repro.scenarios.dsl`), binds expected relationships over their
metrics (:mod:`~repro.scenarios.claims`), executes them through the
campaign runner/cache (:mod:`~repro.scenarios.runner`), and renders
PASS/FAIL/ERROR verdict tables (:mod:`~repro.scenarios.verdict`).
The shipped suite (:mod:`~repro.scenarios.paper`) is runnable as
``python -m repro claims``.
"""

from repro.scenarios.claims import (Claim, at_least, at_most, dominates,
                                    evaluate_claims, monotone_in,
                                    ratio_at_least, ratio_dominates,
                                    within_pct)
from repro.scenarios.dsl import (DesignSpec, FleetSpec, Scenario,
                                 TrafficSpec, WorkloadSpec)
from repro.scenarios.lowering import (lower_scenario,
                                      scenario_design_point)
from repro.scenarios.paper import paper_suite, paper_training_suite
from repro.scenarios.runner import (ClaimSuite, ScenarioExecutionError,
                                    run_suite)
from repro.scenarios.verdict import (Status, SuiteReport, Verdict,
                                     render_csv, render_json,
                                     render_text)

__all__ = [
    "Claim", "ClaimSuite", "DesignSpec", "FleetSpec", "Scenario",
    "ScenarioExecutionError", "Status", "SuiteReport", "TrafficSpec",
    "Verdict", "WorkloadSpec", "at_least", "at_most", "dominates",
    "evaluate_claims", "lower_scenario", "monotone_in", "paper_suite",
    "paper_training_suite", "ratio_at_least", "ratio_dominates",
    "render_csv", "render_json", "render_text", "run_suite",
    "scenario_design_point", "within_pct",
]
