"""The scenario DSL: frozen statements that compose one simulation.

A :class:`Scenario` declares everything the claims engine needs to
reproduce a cell -- system, workload, traffic, fleet, fault model --
as nested frozen dataclasses.  Two axes exist *only* here, with no CLI
flag equivalent:

* **heterogeneous fleets** (:attr:`DesignSpec.device_mix`): a gang
  mixing accelerator generations, timed at the pace of its slowest
  member (weak-scaling synchronization gates every iteration);
* **processing-in-memory** (:attr:`DesignSpec.pim_fraction`): memory
  nodes absorb a fraction of eligible bandwidth-bound op traffic at
  near-bank throughput (Mutlu, arXiv 2305.20000 / 2505.00458).

Every name routes through :mod:`repro.naming` at construction, so a
scenario is canonical the moment it exists; its identity is the
SHA-256 of its :func:`repro.campaign.points.canonicalize` image,
stable across processes and ``PYTHONHASHSEED``.  ``to_dict`` /
``from_dict`` round-trip exactly (all leaf values are JSON scalars).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

from repro.accelerator.generations import generation
from repro.campaign.points import canonical_fingerprint, canonicalize
from repro.naming import (resolve_design, resolve_fault_model,
                          resolve_network, resolve_schedule)
from repro.vmem.prefetch import PREFETCH_POLICY_ORDER

#: Factory/replacement overrides as sorted (key, value) pairs.
Pairs = tuple[tuple[str, Any], ...]

#: Short strategy names accepted by :attr:`WorkloadSpec.strategy`.
STRATEGY_NAMES = ("data", "model", "pipeline")

_SCALARS = (bool, int, float, str)


def _check_pairs(label: str, pairs: Pairs) -> Pairs:
    out = []
    for pair in pairs:
        key, value = pair
        if not isinstance(key, str):
            raise ValueError(f"{label} keys must be strings")
        if value is not None and not isinstance(value, _SCALARS):
            raise ValueError(
                f"{label}[{key!r}] must be a JSON scalar, "
                f"got {type(value).__name__}")
        out.append((key, value))
    return tuple(sorted(out))


@dataclass(frozen=True)
class DesignSpec:
    """The system under test: a design point plus DSL-only axes."""

    design: str
    #: Keyword arguments for the design-point factory.
    overrides: Pairs = ()
    #: ``dataclasses.replace`` fields on the built ``SystemConfig``.
    replacements: Pairs = ()
    #: Heterogeneous fleet: ``((generation, count), ...)``.  Empty
    #: means the design's homogeneous default fleet.
    device_mix: tuple[tuple[str, int], ...] = ()
    #: Fraction of eligible op traffic executed in the memory nodes,
    #: in [0, 1).  Only meaningful on memory-node designs.
    pim_fraction: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "design", resolve_design(self.design))
        object.__setattr__(self, "overrides",
                           _check_pairs("overrides", self.overrides))
        object.__setattr__(self, "replacements",
                           _check_pairs("replacements",
                                        self.replacements))
        mix = []
        for name, count in self.device_mix:
            count = int(count)
            if count <= 0:
                raise ValueError("device_mix counts must be positive")
            mix.append((generation(name).name, count))
        names = [name for name, _ in mix]
        if len(set(names)) != len(names):
            raise ValueError("device_mix repeats a generation; "
                             "merge the counts")
        object.__setattr__(self, "device_mix", tuple(sorted(mix)))
        if not 0.0 <= self.pim_fraction < 1.0:
            raise ValueError("pim_fraction must lie in [0, 1)")


@dataclass(frozen=True)
class WorkloadSpec:
    """What trains (or answers requests): network, batch, strategy."""

    network: str
    batch: int = 512
    strategy: str = "data"
    #: Pipeline-strategy knobs (ignored by data/model parallelism).
    microbatches: int = 8
    schedule: str = "1f1b"
    stages: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "network",
                           resolve_network(self.network))
        if self.strategy not in STRATEGY_NAMES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {', '.join(STRATEGY_NAMES)}")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.microbatches < 1:
            raise ValueError("microbatches must be >= 1")
        try:
            object.__setattr__(self, "schedule",
                               resolve_schedule(self.schedule))
        except KeyError as exc:
            raise ValueError(str(exc).strip('"')) from None
        if self.stages < 0:
            raise ValueError("stages must be >= 0")


@dataclass(frozen=True)
class TrafficSpec:
    """Inference traffic: declaring one turns the scenario serving."""

    arrival: str = "poisson"
    rate: float = 100.0
    n_requests: int = 512
    seed: int = 0
    slo_ms: float = 50.0
    max_batch: int = 8
    max_wait_ms: float = 2.0
    batcher: str = "dynamic"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.n_requests <= 0:
            raise ValueError("n_requests must be positive")
        if self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.batcher not in ("dynamic", "continuous"):
            raise ValueError("batcher must be 'dynamic' or "
                             "'continuous'")


@dataclass(frozen=True)
class FleetSpec:
    """A multi-job fleet: declaring one turns the scenario cluster."""

    policy: str = "fifo"
    job_mix: str = "balanced"
    n_jobs: int = 20
    seed: int = 0
    arrival_rate: float = 0.05
    fleet_devices: int = 16
    pool_capacity: int | None = None
    oversubscription: float = 1.0
    preempt_after: float | None = None

    def __post_init__(self) -> None:
        if self.n_jobs <= 0:
            raise ValueError("n_jobs must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.fleet_devices <= 0:
            raise ValueError("fleet_devices must be positive")
        if self.pool_capacity is not None and self.pool_capacity <= 0:
            raise ValueError("pool_capacity must be positive")
        if self.oversubscription < 1.0:
            raise ValueError("oversubscription must be >= 1")
        if self.preempt_after is not None and self.preempt_after <= 0:
            raise ValueError("preempt_after must be positive")


@dataclass(frozen=True)
class Scenario:
    """One named, fully-specified simulation cell."""

    name: str
    system: DesignSpec
    workload: WorkloadSpec | None = None
    traffic: TrafficSpec | None = None
    fleet: FleetSpec | None = None
    fault_model: str = "none"
    prefetch_policy: str | None = None

    def __post_init__(self) -> None:
        if not self.name or "\n" in self.name:
            raise ValueError("scenario needs a single-line name")
        if self.traffic is not None and self.fleet is not None:
            raise ValueError(
                f"scenario {self.name!r}: traffic and fleet are "
                f"mutually exclusive")
        if self.fleet is None and self.workload is None:
            raise ValueError(
                f"scenario {self.name!r}: needs a workload "
                f"(or a fleet for cluster scenarios)")
        if self.fleet is not None and self.workload is not None:
            raise ValueError(
                f"scenario {self.name!r}: a fleet draws its own job "
                f"mix; drop the workload")
        object.__setattr__(self, "fault_model",
                           resolve_fault_model(self.fault_model))
        if self.prefetch_policy is not None \
                and self.prefetch_policy not in PREFETCH_POLICY_ORDER:
            raise ValueError(
                f"unknown prefetch policy {self.prefetch_policy!r}; "
                f"known: {', '.join(PREFETCH_POLICY_ORDER)}")

    @property
    def mode(self) -> str:
        """``"training"`` | ``"serving"`` | ``"cluster"``."""
        if self.fleet is not None:
            return "cluster"
        if self.traffic is not None:
            return "serving"
        return "training"

    def describe(self) -> dict[str, Any]:
        """The canonical JSON-stable image of this scenario."""
        return canonicalize(self)

    def fingerprint(self) -> str:
        """SHA-256 identity over :meth:`describe` (process-stable)."""
        return canonical_fingerprint(self)

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serializable snapshot (exact round trip)."""
        return {
            "name": self.name,
            "system": _spec_dict(self.system),
            "workload": _spec_dict(self.workload),
            "traffic": _spec_dict(self.traffic),
            "fleet": _spec_dict(self.fleet),
            "fault_model": self.fault_model,
            "prefetch_policy": self.prefetch_policy,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        system = data["system"]
        return cls(
            name=data["name"],
            system=DesignSpec(
                design=system["design"],
                overrides=_pairs(system["overrides"]),
                replacements=_pairs(system["replacements"]),
                device_mix=_pairs(system["device_mix"]),
                pim_fraction=system["pim_fraction"]),
            workload=_from_spec(WorkloadSpec, data["workload"]),
            traffic=_from_spec(TrafficSpec, data["traffic"]),
            fleet=_from_spec(FleetSpec, data["fleet"]),
            fault_model=data["fault_model"],
            prefetch_policy=data["prefetch_policy"],
        )


def _spec_dict(spec) -> dict[str, Any] | None:
    if spec is None:
        return None
    out = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, tuple):
            value = [list(pair) for pair in value]
        out[f.name] = value
    return out


def _pairs(data) -> Pairs:
    return tuple((key, value) for key, value in data)


def _from_spec(cls, data):
    if data is None:
        return None
    return cls(**data)


__all__ = ["DesignSpec", "FleetSpec", "Pairs", "STRATEGY_NAMES",
           "Scenario", "TrafficSpec", "WorkloadSpec"]
