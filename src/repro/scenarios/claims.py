"""Claim primitives: expected relations over scenario metrics.

A :class:`Claim` binds one dotted metric path (resolved by
:func:`repro.core.metrics.resolve_metric`) to an expected relationship
across named scenarios, and evaluates to a
:class:`~repro.scenarios.verdict.Verdict`.  The primitives:

``ratio_at_least``
    ``aggregate(metric[num_i] / metric[den_i]) >= threshold`` (with an
    optional upper window bound) -- speedup and dominance factors.
``ratio_dominates``
    one aggregated ratio against another -- "data-parallel gains
    exceed model-parallel gains", "LOCAL reaches 96% of BW_AWARE".
``within_pct``
    every scenario's metric within a percentage of a reference
    scenario's (``pct=0`` is exact equality -- conservation laws).
``monotone_in``
    the metric is monotone along an ordered scenario list -- frontier
    claims such as "more PIM offload never hurts".
``dominates``
    pairwise ``winner <= loser`` (or ``>=``) with a tolerance --
    oracle bounds, schedule orderings, ties allowed by default.
``at_least`` / ``at_most``
    per-scenario bounds, optionally satisfied by a quorum
    (``min_count``) -- availability floors, "vmem-bound on >= 10 of
    16 cells", zero-host-traffic invariants.

Evaluation never raises: any exception (failed scenario, unresolvable
metric, degenerate aggregate) becomes an ERROR verdict carrying the
exception text.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.core.metrics import SimulationResult, resolve_metric
from repro.scenarios.verdict import Status, Verdict
from repro.units import harmonic_mean

#: Scenario name -> simulated result; raises for failed scenarios.
Lookup = Callable[[str], SimulationResult]

_AGGREGATES = {
    "min": min,
    "max": max,
    "hmean": harmonic_mean,
}


@dataclass(frozen=True)
class Claim:
    """Base: a named expectation over one metric path."""

    name: str
    metric: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("claim needs a name")

    def scenario_names(self) -> tuple[str, ...]:
        """Every scenario this claim binds (for suite validation)."""
        raise NotImplementedError

    def check(self, lookup: Lookup) -> Verdict:
        raise NotImplementedError

    def evaluate(self, lookup: Lookup) -> Verdict:
        """:meth:`check`, with failures folded to ERROR verdicts."""
        try:
            return self.check(lookup)
        except Exception as exc:
            return Verdict(
                claim=self.name, status=Status.ERROR, measured=None,
                expected=f"metric {self.metric!r}", margin=None,
                detail=f"{type(exc).__name__}: {exc}")

    # -- shared helpers -------------------------------------------------

    def _values(self, lookup: Lookup, names) -> list[float]:
        return [resolve_metric(lookup(name), self.metric)
                for name in names]

    def _verdict(self, holds: bool, measured: float, expected: str,
                 margin: float, detail: str = "") -> Verdict:
        return Verdict(
            claim=self.name,
            status=Status.PASS if holds else Status.FAIL,
            # + 0.0 folds IEEE -0.0 to +0.0 (render determinism).
            measured=measured + 0.0, expected=expected,
            margin=margin + 0.0,
            detail=detail if not holds else "")


def _paired(label: str, left, right) -> list[tuple[str, str]]:
    """Zip two name tuples, broadcasting a length-1 side."""
    left, right = tuple(left), tuple(right)
    if not left or not right:
        raise ValueError(f"{label}: needs at least one pair")
    if len(left) == 1:
        left = left * len(right)
    if len(right) == 1:
        right = right * len(left)
    if len(left) != len(right):
        raise ValueError(f"{label}: sides must align "
                         f"({len(left)} vs {len(right)})")
    return list(zip(left, right))


def _aggregate(kind: str):
    try:
        return _AGGREGATES[kind]
    except KeyError:
        raise ValueError(
            f"unknown aggregate {kind!r}; "
            f"known: {', '.join(sorted(_AGGREGATES))}") from None


@dataclass(frozen=True)
class ratio_at_least(Claim):
    """``aggregate(metric[num] / metric[den])`` inside a lower-bounded
    (optionally windowed) range."""

    numerators: tuple[str, ...] = ()
    denominators: tuple[str, ...] = ()
    threshold: float = 1.0
    at_most: float | None = None
    aggregate: str = "min"
    strict: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        _aggregate(self.aggregate)
        object.__setattr__(self, "numerators",
                           tuple(self.numerators))
        object.__setattr__(self, "denominators",
                           tuple(self.denominators))

    def scenario_names(self) -> tuple[str, ...]:
        return self.numerators + self.denominators

    def check(self, lookup: Lookup) -> Verdict:
        pairs = _paired(self.name, self.numerators, self.denominators)
        ratios = [resolve_metric(lookup(num), self.metric)
                  / resolve_metric(lookup(den), self.metric)
                  for num, den in pairs]
        stat = _aggregate(self.aggregate)(ratios)
        relation = ">" if self.strict else ">="
        expected = (f"{self.aggregate}(ratio) {relation} "
                    f"{self.threshold:g}")
        margin = stat - self.threshold
        holds = stat > self.threshold if self.strict \
            else stat >= self.threshold
        if self.at_most is not None:
            expected += f", <= {self.at_most:g}"
            margin = min(margin, self.at_most - stat)
            holds = holds and stat <= self.at_most
        worst = min(zip(ratios, pairs))
        detail = (f"worst {worst[1][0]} / {worst[1][1]} "
                  f"= {worst[0]:.6g}")
        return self._verdict(holds, stat, expected, margin, detail)


@dataclass(frozen=True)
class ratio_dominates(Claim):
    """One aggregated ratio exceeds another by ``factor`` (optionally
    windowed from above)."""

    numerators_a: tuple[str, ...] = ()
    denominators_a: tuple[str, ...] = ()
    numerators_b: tuple[str, ...] = ()
    denominators_b: tuple[str, ...] = ()
    factor: float = 1.0
    at_most: float | None = None
    aggregate: str = "hmean"
    strict: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        _aggregate(self.aggregate)
        for field in ("numerators_a", "denominators_a",
                      "numerators_b", "denominators_b"):
            object.__setattr__(self, field,
                               tuple(getattr(self, field)))

    def scenario_names(self) -> tuple[str, ...]:
        return (self.numerators_a + self.denominators_a
                + self.numerators_b + self.denominators_b)

    def _side(self, lookup: Lookup, numerators, denominators) -> float:
        pairs = _paired(self.name, numerators, denominators)
        ratios = [resolve_metric(lookup(num), self.metric)
                  / resolve_metric(lookup(den), self.metric)
                  for num, den in pairs]
        return _aggregate(self.aggregate)(ratios)

    def check(self, lookup: Lookup) -> Verdict:
        side_a = self._side(lookup, self.numerators_a,
                            self.denominators_a)
        side_b = self._side(lookup, self.numerators_b,
                            self.denominators_b)
        stat = side_a / side_b
        relation = ">" if self.strict else ">="
        expected = (f"{self.aggregate}(A)/{self.aggregate}(B) "
                    f"{relation} {self.factor:g}")
        margin = stat - self.factor
        holds = stat > self.factor if self.strict \
            else stat >= self.factor
        if self.at_most is not None:
            expected += f", <= {self.at_most:g}"
            margin = min(margin, self.at_most - stat)
            holds = holds and stat <= self.at_most
        detail = f"A={side_a:.6g} B={side_b:.6g}"
        return self._verdict(holds, stat, expected, margin, detail)


@dataclass(frozen=True)
class within_pct(Claim):
    """Every scenario's metric within ``pct`` percent of the
    reference scenario's (``pct=0`` demands exact equality)."""

    scenarios: tuple[str, ...] = ()
    reference: str = ""
    pct: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios or not self.reference:
            raise ValueError(f"{self.name}: needs scenarios and a "
                             f"reference")
        if self.pct < 0:
            raise ValueError("pct must be non-negative")

    def scenario_names(self) -> tuple[str, ...]:
        return self.scenarios + (self.reference,)

    def check(self, lookup: Lookup) -> Verdict:
        ref = resolve_metric(lookup(self.reference), self.metric)
        deviations = []
        for name in self.scenarios:
            value = resolve_metric(lookup(name), self.metric)
            if ref == 0.0:
                deviations.append((0.0 if value == 0.0 else
                                   float("inf"), name))
            else:
                deviations.append((abs(value - ref) / abs(ref) * 100.0,
                                   name))
        worst_dev, worst_name = max(deviations)
        expected = f"within {self.pct:g}% of {self.reference}"
        return self._verdict(
            worst_dev <= self.pct, worst_dev, expected,
            self.pct - worst_dev, f"worst {worst_name}")


@dataclass(frozen=True)
class monotone_in(Claim):
    """The metric is monotone along the ordered scenario list."""

    scenarios: tuple[str, ...] = ()
    direction: str = "non-increasing"
    strict: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if len(self.scenarios) < 2:
            raise ValueError(f"{self.name}: monotonicity needs at "
                             f"least two scenarios")
        if self.direction not in ("non-increasing", "non-decreasing"):
            raise ValueError("direction must be 'non-increasing' or "
                             "'non-decreasing'")

    def scenario_names(self) -> tuple[str, ...]:
        return self.scenarios

    def check(self, lookup: Lookup) -> Verdict:
        values = self._values(lookup, self.scenarios)
        sign = 1.0 if self.direction == "non-increasing" else -1.0
        # A violation is a step *against* the direction; the worst
        # step is the claim's statistic (<= 0 means monotone).
        steps = [(sign * (b - a), i)
                 for i, (a, b) in enumerate(zip(values, values[1:]))]
        worst, index = max(steps)
        relation = "<" if self.strict else "<="
        expected = (f"{self.direction}"
                    f"{' (strict)' if self.strict else ''}: "
                    f"worst step {relation} 0")
        holds = worst < 0.0 if self.strict else worst <= 0.0
        detail = (f"worst step {self.scenarios[index]} -> "
                  f"{self.scenarios[index + 1]}")
        return self._verdict(holds, worst, expected, -worst, detail)


@dataclass(frozen=True)
class dominates(Claim):
    """Pairwise: each winner's metric beats (or ties) its loser's."""

    winners: tuple[str, ...] = ()
    losers: tuple[str, ...] = ()
    #: ``"min"``: smaller is better (winner <= loser); ``"max"``: the
    #: reverse.
    sense: str = "min"
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "winners", tuple(self.winners))
        object.__setattr__(self, "losers", tuple(self.losers))
        if self.sense not in ("min", "max"):
            raise ValueError("sense must be 'min' or 'max'")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def scenario_names(self) -> tuple[str, ...]:
        return self.winners + self.losers

    def check(self, lookup: Lookup) -> Verdict:
        pairs = _paired(self.name, self.winners, self.losers)
        sign = 1.0 if self.sense == "min" else -1.0
        # Positive gap = violation beyond the tolerance.
        gaps = [(sign * (resolve_metric(lookup(winner), self.metric)
                         - resolve_metric(lookup(loser), self.metric))
                 - self.tolerance, (winner, loser))
                for winner, loser in pairs]
        worst, (winner, loser) = max(gaps)
        relation = "<=" if self.sense == "min" else ">="
        expected = f"winner {relation} loser"
        if self.tolerance:
            expected += f" (tol {self.tolerance:g})"
        detail = f"worst {winner} vs {loser}"
        return self._verdict(worst <= 0.0, worst, expected, -worst,
                             detail)


@dataclass(frozen=True)
class _Bound(Claim):
    """Shared body of :class:`at_least` / :class:`at_most`."""

    scenarios: tuple[str, ...] = ()
    bound: float = 0.0
    #: With a quorum, the claim holds when at least this many
    #: scenarios satisfy the bound (the statistic becomes the count).
    min_count: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError(f"{self.name}: needs scenarios")
        if self.min_count is not None \
                and not 1 <= self.min_count <= len(self.scenarios):
            raise ValueError(f"{self.name}: min_count must lie in "
                             f"[1, {len(self.scenarios)}]")

    def scenario_names(self) -> tuple[str, ...]:
        return self.scenarios

    def _satisfies(self, value: float) -> bool:
        raise NotImplementedError

    def _relation(self) -> str:
        raise NotImplementedError

    def check(self, lookup: Lookup) -> Verdict:
        values = self._values(lookup, self.scenarios)
        relation = self._relation()
        if self.min_count is not None:
            count = sum(1 for v in values if self._satisfies(v))
            expected = (f">= {self.min_count} of "
                        f"{len(values)} scenarios "
                        f"{relation} {self.bound:g}")
            return self._verdict(
                count >= self.min_count, float(count), expected,
                float(count - self.min_count),
                f"{count} of {len(values)} satisfy")
        extremum = min if relation == ">=" else max
        stat, name = extremum(zip(values, self.scenarios))
        expected = f"every scenario {relation} {self.bound:g}"
        margin = (stat - self.bound if relation == ">="
                  else self.bound - stat)
        return self._verdict(margin >= 0.0, stat, expected, margin,
                             f"worst {name}")


@dataclass(frozen=True)
class at_least(_Bound):
    """Metric >= bound on every scenario (or on a quorum)."""

    def _satisfies(self, value: float) -> bool:
        return value >= self.bound

    def _relation(self) -> str:
        return ">="


@dataclass(frozen=True)
class at_most(_Bound):
    """Metric <= bound on every scenario (or on a quorum)."""

    def _satisfies(self, value: float) -> bool:
        return value <= self.bound

    def _relation(self) -> str:
        return "<="


def evaluate_claims(claims, lookup: Lookup) -> tuple[Verdict, ...]:
    """Evaluate every claim, in order; never raises."""
    return tuple(claim.evaluate(lookup) for claim in claims)
