"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro fig13
    python -m repro all
    python -m repro campaign --jobs 8 --networks VGG-E
    python -m repro bench --quick
    python -m repro trace "MC-DLA(B)" GPT2 --strategy pipeline
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable


def _fig2() -> str:
    from repro.experiments.fig2_motivation import format_fig2, run_fig2
    return format_fig2(run_fig2())


def _fig9() -> str:
    from repro.experiments.fig9_collectives import format_fig9, run_fig9
    return format_fig9(run_fig9())


def _fig10() -> str:
    from repro.experiments.fig10_allocation import (format_fig10,
                                                    run_fig10)
    return format_fig10(run_fig10())


def _fig11() -> str:
    from repro.experiments.fig11_breakdown import format_fig11, run_fig11
    from repro.training.parallel import ParallelStrategy
    return (format_fig11(run_fig11(ParallelStrategy.DATA)) + "\n\n"
            + format_fig11(run_fig11(ParallelStrategy.MODEL)))


def _fig12() -> str:
    from repro.experiments.fig12_cpu_bandwidth import (format_fig12,
                                                       run_fig12)
    return format_fig12(run_fig12())


def _fig13() -> str:
    from repro.experiments.fig13_performance import (format_fig13,
                                                     run_fig13)
    return format_fig13(run_fig13())


def _fig14() -> str:
    from repro.experiments.fig14_batch_sensitivity import (format_fig14,
                                                           run_fig14)
    return format_fig14(run_fig14())


def _tab4() -> str:
    from repro.experiments.tab4_power import format_tab4, run_tab4
    return format_tab4(run_tab4())


def _scalability() -> str:
    from repro.experiments.scalability import (format_scalability,
                                               run_scalability)
    return format_scalability(run_scalability())


def _sensitivity() -> str:
    from repro.experiments.sensitivity import (format_sensitivity,
                                               run_sensitivity)
    return format_sensitivity(run_sensitivity())


def _ablations() -> str:
    from repro.experiments.ablations import format_ablations, run_ablations
    return format_ablations(run_ablations())


def _productivity() -> str:
    from repro.experiments.user_productivity import (
        format_user_productivity, run_user_productivity)
    return format_user_productivity(run_user_productivity())


def _scaleout() -> str:
    from repro.experiments.scaleout import format_scaleout, run_scaleout
    return format_scaleout(run_scaleout())


def _pipeline() -> str:
    from repro.experiments.pipeline_comparison import (
        format_pipeline_comparison, run_pipeline_comparison)
    return format_pipeline_comparison(run_pipeline_comparison())


def _serving() -> str:
    from repro.experiments.serving_comparison import (
        format_serving_comparison, run_serving_comparison)
    return format_serving_comparison(run_serving_comparison())


def _fleet() -> str:
    from repro.experiments.cluster_comparison import (
        format_cluster_comparison, run_cluster_comparison)
    return format_cluster_comparison(run_cluster_comparison())


def _prefetch_main(argv: list[str]) -> int:
    """``python -m repro prefetch``: the policy x design x mode study."""
    from repro.experiments.prefetch_comparison import (
        MODES, format_prefetch_comparison, run_prefetch_comparison,
        scalars_json)
    from repro.vmem.prefetch import PREFETCH_POLICY_ORDER

    parser = argparse.ArgumentParser(
        prog="python -m repro prefetch",
        description="Compare vmem prefetch/eviction policies across "
                    "all six designs in training, pipeline, serving, "
                    "and cluster modes.")
    parser.add_argument(
        "--policies", default=",".join(PREFETCH_POLICY_ORDER),
        help="comma-separated policies (default: all five)")
    parser.add_argument(
        "--modes", default=",".join(MODES),
        help="comma-separated modes (default: all four)")
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke run: training mode only, on AlexNet")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1)")
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table); json emits the study's "
             "key scalars, sorted and byte-deterministic")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write output to this file instead of stdout")
    from repro.telemetry.session import (TelemetrySession,
                                         add_telemetry_argument)
    add_telemetry_argument(parser)
    args = parser.parse_args(argv)

    policies = [p.strip() for p in args.policies.split(",")
                if p.strip()]
    unknown = [p for p in policies if p not in PREFETCH_POLICY_ORDER]
    if unknown:
        print(f"unknown policy(ies): {', '.join(unknown)}; known: "
              f"{', '.join(PREFETCH_POLICY_ORDER)}", file=sys.stderr)
        return 2
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    bad = [m for m in modes if m not in MODES]
    if bad:
        print(f"unknown mode(s): {', '.join(bad)}; known: "
              f"{', '.join(MODES)}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.quick:
        modes = ["training"]
        kwargs["training_network"] = "AlexNet"

    session = TelemetrySession(
        tool="prefetch", argv=argv, enabled=args.telemetry,
        output=args.output,
        config={"policies": policies, "modes": modes, **kwargs})
    with session:
        study = run_prefetch_comparison(policies=tuple(policies),
                                        modes=tuple(modes),
                                        jobs=args.jobs, **kwargs)
    text = (scalars_json(study) if args.format == "json"
            else format_prefetch_comparison(study))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


def _faults_main(argv: list[str]) -> int:
    """``python -m repro faults``: the fault x design x mode study."""
    from repro.experiments.faults_comparison import (
        MODES, format_fault_comparison, run_fault_comparison,
        scalars_json)
    from repro.faults.model import FAULT_MODEL_ORDER

    parser = argparse.ArgumentParser(
        prog="python -m repro faults",
        description="Inject deterministic fault models (link flaps, "
                    "stragglers, memory-node loss) across all six "
                    "designs in training, pipeline, serving, and "
                    "cluster modes and report slowdown/availability.")
    parser.add_argument(
        "--fault-models", default=",".join(FAULT_MODEL_ORDER),
        help="comma-separated fault models (default: all six)")
    parser.add_argument(
        "--modes", default=",".join(MODES),
        help="comma-separated modes (default: all four)")
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke run: training mode only, on AlexNet")
    parser.add_argument(
        "-j", "--jobs", type=int, default=1,
        help="worker processes (default: 1)")
    parser.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table); json emits the study's "
             "key scalars, sorted and byte-deterministic")
    parser.add_argument(
        "-o", "--output", default=None,
        help="write output to this file instead of stdout")
    from repro.telemetry.session import (TelemetrySession,
                                         add_telemetry_argument)
    add_telemetry_argument(parser)
    args = parser.parse_args(argv)

    models = [m.strip() for m in args.fault_models.split(",")
              if m.strip()]
    unknown = [m for m in models if m not in FAULT_MODEL_ORDER]
    if unknown:
        print(f"unknown fault model(s): {', '.join(unknown)}; known: "
              f"{', '.join(FAULT_MODEL_ORDER)}", file=sys.stderr)
        return 2
    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    bad = [m for m in modes if m not in MODES]
    if bad:
        print(f"unknown mode(s): {', '.join(bad)}; known: "
              f"{', '.join(MODES)}", file=sys.stderr)
        return 2
    kwargs = {}
    if args.quick:
        modes = ["training"]
        kwargs["training_network"] = "AlexNet"

    session = TelemetrySession(
        tool="faults", argv=argv, enabled=args.telemetry,
        output=args.output,
        config={"fault_models": models, "modes": modes, **kwargs})
    with session:
        study = run_fault_comparison(models=tuple(models),
                                     modes=tuple(modes),
                                     jobs=args.jobs, **kwargs)
    text = (scalars_json(study) if args.format == "json"
            else format_fault_comparison(study))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    return 0


EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "fig2": ("Figure 2: device generations vs PCIe overhead", _fig2),
    "fig9": ("Figure 9: ring collective latency", _fig9),
    "fig10": ("Figure 10: LOCAL vs BW_AWARE allocation", _fig10),
    "fig11": ("Figure 11: latency breakdown", _fig11),
    "fig12": ("Figure 12: CPU memory bandwidth usage", _fig12),
    "fig13": ("Figure 13: design-point performance", _fig13),
    "fig14": ("Figure 14: batch-size sensitivity", _fig14),
    "tab4": ("Table IV: memory-node power", _tab4),
    "scalability": ("Section V-D: device-count scaling", _scalability),
    "sensitivity": ("Section V-B: sensitivity studies", _sensitivity),
    "ablations": ("Design-choice ablations", _ablations),
    "productivity": ("Section V-E: user productivity", _productivity),
    "scaleout": ("Section VI: scale-out plane", _scaleout),
    "pipeline": ("Pipeline parallelism: schedules x designs on "
                 "transformers", _pipeline),
    "serving": ("Inference serving: six designs under rising load "
                "until SLO collapse", _serving),
    "fleet": ("Cluster fleet: scheduling policies x designs over a "
              "shared memory pool", _fleet),
}


def _trace_main(argv: list[str]) -> int:
    """``python -m repro trace``: export one iteration's Chrome trace."""
    from repro.cluster.policies import POLICY_NAMES
    from repro.core.design_points import DESIGN_ORDER, design_point
    from repro.core.simulator import iteration_timeline
    from repro.core.trace import engine_utilization, to_chrome_trace
    from repro.dnn.registry import WORKLOAD_NAMES
    from repro.naming import resolve_design, resolve_network
    from repro.training.parallel import ParallelStrategy

    strategies = {"data": ParallelStrategy.DATA,
                  "model": ParallelStrategy.MODEL,
                  "pipeline": ParallelStrategy.PIPELINE}
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Write the Chrome/Perfetto trace JSON of one "
                    "simulated training iteration, or (--cluster) of "
                    "one cluster run's per-job lifecycle.")
    parser.add_argument("design",
                        help=f"one of {', '.join(DESIGN_ORDER)} "
                             f"(aliases accepted, e.g. mc-hbm)")
    parser.add_argument("network", nargs="?", default=None,
                        help=f"one of {', '.join(WORKLOAD_NAMES)} "
                             f"(not used with --cluster)")
    parser.add_argument("--batch", type=int, default=512,
                        help="global batch size (default: 512)")
    parser.add_argument("--strategy", choices=sorted(strategies),
                        default="data",
                        help="parallelization strategy (default: data)")
    parser.add_argument("--pipeline-schedule", default="1f1b",
                        help="microbatch schedule for --strategy "
                             "pipeline: gpipe, 1f1b, zb-h1, "
                             "interleaved, zb-auto; aliases accepted "
                             "(default: 1f1b)")
    parser.add_argument("--microbatches", type=int, default=None,
                        help="microbatches per pipeline iteration "
                             "(default: the design point's)")
    parser.add_argument("--cluster", action="store_true",
                        help="trace a cluster run instead: one row "
                             "per job with queued/running/preempted "
                             "lifecycle slices")
    parser.add_argument("--policy", default="fifo",
                        choices=POLICY_NAMES,
                        help="cluster scheduling policy "
                             "(default: fifo)")
    parser.add_argument("--cluster-jobs", type=int, default=24,
                        help="jobs in the cluster stream "
                             "(default: 24)")
    parser.add_argument("--job-mix", default="balanced",
                        help="cluster job mix (default: balanced)")
    parser.add_argument("--seed", type=int, default=0,
                        help="cluster job-stream seed (default: 0)")
    parser.add_argument("--preempt-after", type=float, default=None,
                        help="cluster preemption patience in seconds "
                             "(default: off)")
    parser.add_argument("--telemetry", action="store_true",
                        help="merge host wall-clock spans (plan/emit/"
                             "schedule/price) into the trace as a "
                             "second process row")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: derived from the "
                             "design/network/strategy)")
    args = parser.parse_args(argv)

    from repro.naming import resolve_schedule

    try:
        design = resolve_design(args.design)
        network = (resolve_network(args.network)
                   if args.network is not None else None)
        schedule = resolve_schedule(args.pipeline_schedule)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    config = design_point(design)
    replacements = {}
    if schedule != config.pipeline_schedule:
        replacements["pipeline_schedule"] = schedule
    if args.microbatches is not None:
        replacements["pipeline_microbatches"] = args.microbatches
    if replacements:
        import dataclasses
        config = dataclasses.replace(config, **replacements)

    if args.cluster:
        from repro.cluster.jobs import generate_jobs
        from repro.cluster.simulator import ClusterSimulator
        from repro.core.trace import cluster_chrome_trace
        jobs = generate_jobs(args.job_mix, args.cluster_jobs,
                             seed=args.seed,
                             node_width=config.n_devices)
        sim = ClusterSimulator(config, policy=args.policy,
                               preempt_after=args.preempt_after)
        ledger, makespan = sim.run(jobs)
        text = cluster_chrome_trace(ledger.events)
        path = args.output
        if path is None:
            slug = "".join(c if c.isalnum() else "-" for c in
                           f"{design}-cluster-{args.policy}")
            path = f"{slug.lower()}.trace.json"
        with open(path, "w") as handle:
            handle.write(text)
        print(f"wrote {path}: {len(jobs)} jobs, "
              f"{len(ledger.events)} lifecycle events, "
              f"makespan {makespan:.1f} s, "
              f"{ledger.preemptions} preemptions")
        return 0

    if network is None:
        print("network is required unless --cluster is given",
              file=sys.stderr)
        return 2

    strategy = strategies[args.strategy]
    host_spans = None
    if args.telemetry:
        # Record the simulator's own phase spans over one full run,
        # then switch tracing back off so the timeline export below
        # does not re-record duplicates.
        from repro import telemetry
        from repro.core.simulator import simulate
        telemetry.enable(fresh=True)
        try:
            simulate(config, network, args.batch, strategy)
            recorder = telemetry.span_recorder()
            host_spans = list(recorder.spans) if recorder else []
        finally:
            telemetry.disable()
    timeline = iteration_timeline(config, network, args.batch,
                                  strategy)
    text = to_chrome_trace(
        timeline, include_bubbles=strategy is ParallelStrategy.PIPELINE,
        host_spans=host_spans)

    path = args.output
    if path is None:
        slug = "".join(c if c.isalnum() else "-" for c in
                       f"{design}-{network}-{args.strategy}")
        path = f"{slug.lower()}.trace.json"
    with open(path, "w") as handle:
        handle.write(text)

    util = engine_utilization(timeline)
    summary = " ".join(f"{k}={v:.2f}" for k, v in util.items())
    print(f"wrote {path}: {len(timeline.scheduled)} ops, "
          f"makespan {timeline.makespan * 1e3:.3f} ms, "
          f"utilization {summary}")
    if len(timeline.channels) > 1:
        per_channel = engine_utilization(timeline, per_channel=True)
        busy = " ".join(f"{k}={v:.2f}"
                        for k, v in per_channel.items() if v > 0)
        print(f"per-channel utilization: {busy}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        print("usage: python -m repro <experiment|all>")
        print("       python -m repro campaign [options]")
        print("       python -m repro serve [options]")
        print("       python -m repro cluster [options]")
        print("       python -m repro prefetch [options]")
        print("       python -m repro faults [options]")
        print("       python -m repro claims [options]")
        print("       python -m repro bench [--quick] [--update]")
        print("       python -m repro trace <design> <network> [options]")
        print("experiments:")
        for key, (title, _) in EXPERIMENTS.items():
            print(f"  {key:<12} {title}")
        print("  campaign     arbitrary sweeps over the design space "
              "(--help for options)")
        print("  serve        one serving simulation: latency "
              "percentiles, goodput, SLO (--help for options)")
        print("  cluster      one multi-job cluster simulation: JCT, "
              "queueing, pool utilization (--help for options)")
        print("  prefetch     prefetch policies x designs x modes: "
              "stall, waste, evictions (--help for options)")
        print("  faults       fault models x designs x modes: "
              "slowdown, availability, recovery (--help for options)")
        print("  claims       the shipped paper-claims suite: "
              "PASS/FAIL verdict table (--help for options)")
        print("  bench        time the simulator, diff against the "
              "committed BENCH_*.json baselines (--help for options)")
        print("  trace        Chrome/Perfetto trace of one iteration "
              "(--help for options)")
        return 0

    if args[0] == "campaign":
        from repro.campaign.cli import main as campaign_main
        return campaign_main(args[1:])

    if args[0] == "serve":
        from repro.serving.cli import main as serve_main
        return serve_main(args[1:])

    if args[0] == "cluster":
        from repro.cluster.cli import main as cluster_main
        return cluster_main(args[1:])

    if args[0] == "prefetch":
        return _prefetch_main(args[1:])

    if args[0] == "faults":
        return _faults_main(args[1:])

    if args[0] == "claims":
        from repro.scenarios.cli import main as claims_main
        return claims_main(args[1:])

    if args[0] == "bench":
        from repro.bench import main as bench_main
        return bench_main(args[1:])

    if args[0] == "trace":
        return _trace_main(args[1:])

    targets = list(EXPERIMENTS) if args[0] == "all" else args
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for target in targets:
        title, runner = EXPERIMENTS[target]
        print(f"\n### {title}\n")
        print(runner())
    return 0


if __name__ == "__main__":
    sys.exit(main())
