"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list
    python -m repro fig13
    python -m repro all
    python -m repro campaign --jobs 8 --networks VGG-E
"""

from __future__ import annotations

import sys
from collections.abc import Callable


def _fig2() -> str:
    from repro.experiments.fig2_motivation import format_fig2, run_fig2
    return format_fig2(run_fig2())


def _fig9() -> str:
    from repro.experiments.fig9_collectives import format_fig9, run_fig9
    return format_fig9(run_fig9())


def _fig10() -> str:
    from repro.experiments.fig10_allocation import (format_fig10,
                                                    run_fig10)
    return format_fig10(run_fig10())


def _fig11() -> str:
    from repro.experiments.fig11_breakdown import format_fig11, run_fig11
    from repro.training.parallel import ParallelStrategy
    return (format_fig11(run_fig11(ParallelStrategy.DATA)) + "\n\n"
            + format_fig11(run_fig11(ParallelStrategy.MODEL)))


def _fig12() -> str:
    from repro.experiments.fig12_cpu_bandwidth import (format_fig12,
                                                       run_fig12)
    return format_fig12(run_fig12())


def _fig13() -> str:
    from repro.experiments.fig13_performance import (format_fig13,
                                                     run_fig13)
    return format_fig13(run_fig13())


def _fig14() -> str:
    from repro.experiments.fig14_batch_sensitivity import (format_fig14,
                                                           run_fig14)
    return format_fig14(run_fig14())


def _tab4() -> str:
    from repro.experiments.tab4_power import format_tab4, run_tab4
    return format_tab4(run_tab4())


def _scalability() -> str:
    from repro.experiments.scalability import (format_scalability,
                                               run_scalability)
    return format_scalability(run_scalability())


def _sensitivity() -> str:
    from repro.experiments.sensitivity import (format_sensitivity,
                                               run_sensitivity)
    return format_sensitivity(run_sensitivity())


def _ablations() -> str:
    from repro.experiments.ablations import format_ablations, run_ablations
    return format_ablations(run_ablations())


def _productivity() -> str:
    from repro.experiments.user_productivity import (
        format_user_productivity, run_user_productivity)
    return format_user_productivity(run_user_productivity())


def _scaleout() -> str:
    from repro.experiments.scaleout import format_scaleout, run_scaleout
    return format_scaleout(run_scaleout())


EXPERIMENTS: dict[str, tuple[str, Callable[[], str]]] = {
    "fig2": ("Figure 2: device generations vs PCIe overhead", _fig2),
    "fig9": ("Figure 9: ring collective latency", _fig9),
    "fig10": ("Figure 10: LOCAL vs BW_AWARE allocation", _fig10),
    "fig11": ("Figure 11: latency breakdown", _fig11),
    "fig12": ("Figure 12: CPU memory bandwidth usage", _fig12),
    "fig13": ("Figure 13: design-point performance", _fig13),
    "fig14": ("Figure 14: batch-size sensitivity", _fig14),
    "tab4": ("Table IV: memory-node power", _tab4),
    "scalability": ("Section V-D: device-count scaling", _scalability),
    "sensitivity": ("Section V-B: sensitivity studies", _sensitivity),
    "ablations": ("Design-choice ablations", _ablations),
    "productivity": ("Section V-E: user productivity", _productivity),
    "scaleout": ("Section VI: scale-out plane", _scaleout),
}


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    if not args or args[0] in ("-h", "--help", "list"):
        print("usage: python -m repro <experiment|all>")
        print("       python -m repro campaign [options]")
        print("experiments:")
        for key, (title, _) in EXPERIMENTS.items():
            print(f"  {key:<12} {title}")
        print("  campaign     arbitrary sweeps over the design space "
              "(--help for options)")
        return 0

    if args[0] == "campaign":
        from repro.campaign.cli import main as campaign_main
        return campaign_main(args[1:])

    targets = list(EXPERIMENTS) if args[0] == "all" else args
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for target in targets:
        title, runner = EXPERIMENTS[target]
        print(f"\n### {title}\n")
        print(runner())
    return 0


if __name__ == "__main__":
    sys.exit(main())
