"""``python -m repro serve``: one serving simulation, interactively.

Examples::

    python -m repro serve --design mc-hbm --network gpt2 \\
        --arrival-rate 200 --slo-ms 50
    python -m repro serve --design DC-DLA --network GPT2 \\
        --arrival bursty --arrival-rate 800 --batcher continuous
    python -m repro serve --design mc-hbm --network VGG-E \\
        --max-batch 16 --max-wait-ms 5 --format json

Design points and networks accept friendly aliases (``mc-hbm`` for the
BW_AWARE memory-centric ring backed by the HBM-class pool, ``dc`` for
the device-centric baseline, ``gpt2``/``bert`` for the transformer
workloads) on top of the exact Figure 11/13 names.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.design_points import design_point
from repro.dnn.registry import TRANSFORMER_NAMES
# Re-exported for backward compatibility: the alias tables and
# resolvers now live in repro.naming, shared with the cluster and
# trace CLIs.
from repro.naming import (DESIGN_ALIASES, NETWORK_ALIASES,  # noqa: F401
                          resolve_design, resolve_network)
from repro.serving.server import (DEFAULT_DECODE_STEPS, DEFAULT_REQUESTS,
                                  DEFAULT_SLO, simulate_serving)
from repro.telemetry.session import TelemetrySession, add_telemetry_argument


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve an open-loop request trace on a design "
                    "point and report the latency distribution, "
                    "goodput, and SLO attainment.")
    parser.add_argument("--design", default="MC-DLA(B)",
                        help="design point or alias (default: "
                             "MC-DLA(B); try mc-hbm, dc, oracle)")
    parser.add_argument("--network", default="GPT2",
                        help="workload or alias (default: GPT2)")
    parser.add_argument("--arrival-rate", type=float, default=100.0,
                        help="offered load in requests/sec "
                             "(default: 100)")
    parser.add_argument("--arrival", default="poisson",
                        choices=("poisson", "bursty"),
                        help="arrival process (default: poisson)")
    parser.add_argument("--slo-ms", type=float,
                        default=DEFAULT_SLO * 1e3,
                        help="latency SLO in milliseconds "
                             f"(default: {DEFAULT_SLO * 1e3:g})")
    parser.add_argument("--requests", type=int,
                        default=DEFAULT_REQUESTS,
                        help="trace length in requests "
                             f"(default: {DEFAULT_REQUESTS})")
    parser.add_argument("--seed", type=int, default=0,
                        help="arrival-trace seed (default: 0)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="dynamic batcher: max batch size "
                             "(default: 8)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="dynamic batcher: max wait deadline in "
                             "ms (default: 2)")
    parser.add_argument("--batcher", default="dynamic",
                        choices=("dynamic", "continuous"),
                        help="batching discipline; continuous = "
                             "iteration-level decode batching "
                             "(transformers only)")
    parser.add_argument("--decode-steps", type=int,
                        default=DEFAULT_DECODE_STEPS,
                        help="decode steps per request under "
                             "continuous batching (default: "
                             f"{DEFAULT_DECODE_STEPS})")
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format (default: table)")
    add_telemetry_argument(parser)
    return parser


def format_stats(design: str, network: str, result) -> str:
    """Human-readable report of one serving run."""
    s = result.serving
    ms = 1e3
    lines = [
        f"serving {network} on {design}: {s.arrival}, "
        f"{s.batcher} batching (max {s.max_batch}, "
        f"wait {s.max_wait * ms:g} ms), {s.n_servers} server(s)",
        f"  requests          {s.n_requests} over {s.duration:.3f}s "
        f"(offered {s.offered_rate:g} req/s)",
        f"  latency           p50 {s.latency_p50 * ms:.2f} ms | "
        f"p95 {s.latency_p95 * ms:.2f} ms | "
        f"p99 {s.latency_p99 * ms:.2f} ms | "
        f"max {s.latency_max * ms:.2f} ms",
        f"  mean              latency {s.latency_mean * ms:.2f} ms = "
        f"queue {s.queue_delay_mean * ms:.2f} ms + "
        f"service {s.service_mean * ms:.2f} ms",
        f"  SLO {s.slo * ms:g} ms       attainment "
        f"{s.slo_attainment * 100:.1f}% | goodput {s.goodput:.1f} "
        f"req/s of {s.throughput:.1f} req/s",
        f"  batching          mean batch {s.mean_batch_size:.2f} | "
        f"utilization {s.utilization * 100:.1f}% | "
        f"tail amplification {s.tail_amplification:.2f}x",
        f"  per-batch memory  {result.offload_bytes_per_device / 1e6:.0f}"
        f" MB weights streamed/device",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        design = resolve_design(args.design)
        network = resolve_network(args.network)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.batcher == "continuous" and network not in TRANSFORMER_NAMES:
        print(f"continuous batching needs a transformer workload "
              f"(decode phase); {network} has none. "
              f"transformers: {', '.join(TRANSFORMER_NAMES)}",
              file=sys.stderr)
        return 2

    config = design_point(design)
    session = TelemetrySession(
        tool="serve",
        argv=list(argv) if argv is not None else sys.argv[1:],
        enabled=args.telemetry, seed=args.seed,
        config={"design": design, "network": network,
                "arrival": args.arrival, "rate": args.arrival_rate,
                "n_requests": args.requests,
                "slo": args.slo_ms / 1e3,
                "max_batch": args.max_batch,
                "max_wait": args.max_wait_ms / 1e3,
                "batcher": args.batcher,
                "decode_steps": args.decode_steps})
    with session:
        result = simulate_serving(
            config, network,
            arrival=args.arrival, rate=args.arrival_rate,
            n_requests=args.requests, seed=args.seed,
            slo=args.slo_ms / 1e3, max_batch=args.max_batch,
            max_wait=args.max_wait_ms / 1e3, batcher=args.batcher,
            decode_steps=args.decode_steps)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_stats(design, network, result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
