"""The serving loop: traces x batcher x per-batch simulations.

Two server models, both deterministic event loops:

* :func:`run_dynamic` -- ``n_servers`` data-parallel replicas (one per
  device of the design point) each serve whole batches; a batch's
  service time is one forward-only ``simulate()`` of the network at
  that batch size, so queueing delay and the design's memory system
  compose into the end-to-end latency distribution.
* :func:`run_continuous` -- iteration-level (continuous) batching for
  the transformer workloads: one execution engine re-forms its batch
  every decode step, admitting waiting requests into free slots at
  step boundaries and retiring each request after its
  ``decode_steps``-th step.  Step time is a forward pass of the
  decode-step network; admissions additionally pay their prefill.

:func:`simulate_serving` wraps either loop into a cached, JSON-round-
tripping :class:`~repro.core.metrics.SimulationResult` carrying
:class:`~repro.core.metrics.ServingStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

# Re-exported: percentile's home is the shared metrics layer now, but
# callers historically import it from here.
from repro.core.metrics import (ExecutionMode, FaultStats,
                                LatencyBreakdown, ServingStats,
                                SimulationResult, percentile)
from repro.core.simulator import simulate
from repro.core.system import SystemConfig
from repro.faults.lowering import (active_fault_model, degraded_config,
                                   healthy_config, record_fault_stats)
from repro.dnn.graph import Network
from repro.dnn.registry import build_network, decode_network
from repro.serving.batcher import BatchPolicy, next_batch
from repro.serving.traces import (Request, mmpp_trace, poisson_trace,
                                  replayed_trace)
from repro.training.parallel import ParallelStrategy

#: ``latency_fn(batch_size) -> seconds`` of one forward pass.
LatencyFn = Callable[[int], float]

DEFAULT_REQUESTS = 512
DEFAULT_SLO = 0.050
DEFAULT_DECODE_STEPS = 32


@dataclass(frozen=True)
class CompletedRequest:
    """One request's ledger entry."""

    request: Request
    dispatched: float  # service start (batch dispatch / admission)
    finished: float
    service: float     # time in service (dispatch to completion)

    @property
    def latency(self) -> float:
        return self.finished - self.request.arrival

    @property
    def queue_delay(self) -> float:
        return self.dispatched - self.request.arrival


@dataclass(frozen=True)
class ServingLedger:
    """Everything one server loop produced."""

    completed: tuple[CompletedRequest, ...]
    #: Aggregate engine-busy seconds across all servers.
    busy: float
    #: Dispatched batches (dynamic) or executed iterations (continuous).
    n_batches: int
    #: Request-batch memberships: requests (dynamic) or request-steps
    #: (continuous); ``work_items / n_batches`` is the mean batch size.
    work_items: int
    #: Requests dropped by SLO-aware load shedding before service
    #: (fault recovery; 0 when shedding is off).
    n_shed: int = 0
    #: Requests that completed past the request timeout and were
    #: excluded from the completion ledger (their service time still
    #: occupied the engine).
    n_timed_out: int = 0


class BatchLatencyModel:
    """Memoized forward-only batch latency of (design, network).

    Each distinct batch size triggers exactly one
    ``simulate(mode=INFERENCE)`` call; a serving run touches only a
    handful of sizes (``max_batch`` and the drain tail), so the whole
    trace prices in a few simulator invocations.
    """

    def __init__(self, config: SystemConfig, network: Network | str,
                 strategy: ParallelStrategy = ParallelStrategy.DATA) \
            -> None:
        self.config = config
        self.network = (build_network(network)
                        if isinstance(network, str) else network)
        self.strategy = strategy
        self._memo: dict[int, SimulationResult] = {}

    def result(self, batch: int) -> SimulationResult:
        if batch not in self._memo:
            self._memo[batch] = simulate(
                self.config, self.network, batch, self.strategy,
                mode=ExecutionMode.INFERENCE)
        return self._memo[batch]

    def __call__(self, batch: int) -> float:
        return self.result(batch).iteration_time


def run_dynamic(trace: Sequence[Request], policy: BatchPolicy,
                latency_fn: LatencyFn, n_servers: int = 1, *,
                shed_delay: float | None = None,
                timeout: float | None = None) -> ServingLedger:
    """Serve a trace with dynamic batching over replica servers.

    Batches form and dispatch in strict FIFO arrival order; each
    batch goes to the replica that frees up first.  Completion order
    may differ across replicas (a later, smaller batch can finish
    first), but within a replica service is serial.

    Fault recovery (both off by default, leaving the loop
    byte-identical): ``shed_delay`` drops a request whose projected
    queueing delay on the next-free replica already exceeds it;
    ``timeout`` excludes completions slower than it from the ledger
    (the replica still burned the service time).
    """
    if n_servers < 1:
        raise ValueError("need at least one server")
    free = [0.0] * n_servers
    completed: list[CompletedRequest] = []
    busy = 0.0
    n_batches = 0
    n_shed = 0
    n_timed_out = 0
    work_items = 0
    index = 0
    while index < len(trace):
        server = min(range(n_servers), key=free.__getitem__)
        if shed_delay is not None:
            while (index < len(trace)
                   and free[server] - trace[index].arrival > shed_delay):
                n_shed += 1
                index += 1
            if index >= len(trace):
                break
        count, dispatch = next_batch(trace, index, free[server], policy)
        service = latency_fn(count)
        if service < 0:
            raise ValueError("negative batch service time")
        finish = dispatch + service
        free[server] = finish
        busy += service
        n_batches += 1
        work_items += count
        for r in trace[index:index + count]:
            if timeout is not None and finish - r.arrival > timeout:
                n_timed_out += 1
                continue
            completed.append(
                CompletedRequest(request=r, dispatched=dispatch,
                                 finished=finish, service=service))
        index += count
    return ServingLedger(completed=tuple(completed), busy=busy,
                         n_batches=n_batches, work_items=work_items,
                         n_shed=n_shed, n_timed_out=n_timed_out)


def run_continuous(trace: Sequence[Request], policy: BatchPolicy,
                   step_fn: LatencyFn,
                   prefill_fn: LatencyFn | None = None, *,
                   shed_delay: float | None = None,
                   timeout: float | None = None) \
        -> ServingLedger:
    """Iteration-level (continuous) batching over one engine.

    The engine loops over decode iterations; at every step boundary it
    admits waiting requests into free slots (up to ``max_batch``
    in-flight).  An iteration costs the decode-step time at the
    current in-flight count, plus the admitted requests' prefill
    (``prefill_fn`` at the admission count) when given.  A request
    retires after its ``decode_steps``-th iteration.

    Only ``policy.max_batch`` applies here: iteration-level batching
    never holds work back to fill a batch, so ``max_wait`` plays no
    role (``simulate_serving`` normalizes it to zero for continuous
    cells).

    Fault recovery mirrors :func:`run_dynamic`: ``shed_delay`` drops a
    waiting request at its admission opportunity once it has queued
    longer than the threshold; ``timeout`` excludes too-slow
    completions from the ledger.  Both default off and change nothing.
    """
    clock = 0.0
    index = 0
    active: list[list] = []  # [steps_remaining, request, admitted_at]
    completed: list[CompletedRequest] = []
    busy = 0.0
    n_batches = 0
    work_items = 0
    n_shed = 0
    n_timed_out = 0
    while active or index < len(trace):
        if not active and trace[index].arrival > clock:
            clock = trace[index].arrival
        admitted = 0
        while (index < len(trace)
               and len(active) < policy.max_batch
               and trace[index].arrival <= clock):
            request = trace[index]
            if shed_delay is not None \
                    and clock - request.arrival > shed_delay:
                n_shed += 1
                index += 1
                continue
            active.append([request.decode_steps, request, clock])
            admitted += 1
            index += 1
        if not active:
            # Every admissible request was shed; re-anchor the clock
            # on the next arrival instead of running an empty step.
            continue
        step = step_fn(len(active))
        if admitted and prefill_fn is not None:
            step += prefill_fn(admitted)
        if step <= 0:
            raise ValueError("iteration time must be positive")
        clock += step
        busy += step
        n_batches += 1
        work_items += len(active)
        still = []
        for entry in active:
            entry[0] -= 1
            if entry[0] == 0:
                _, request, admitted_at = entry
                if timeout is not None \
                        and clock - request.arrival > timeout:
                    n_timed_out += 1
                    continue
                completed.append(CompletedRequest(
                    request=request, dispatched=admitted_at,
                    finished=clock, service=clock - admitted_at))
            else:
                still.append(entry)
        active = still
    completed.sort(key=lambda c: (c.finished, c.request.rid))
    return ServingLedger(completed=tuple(completed), busy=busy,
                         n_batches=n_batches, work_items=work_items,
                         n_shed=n_shed, n_timed_out=n_timed_out)


def compute_stats(ledger: ServingLedger, *, arrival: str, batcher: str,
                  policy: BatchPolicy, slo: float, offered_rate: float,
                  n_servers: int) -> ServingStats:
    """Fold a server ledger into :class:`ServingStats`.

    A ledger that completed nothing (zero offered load, or every
    request shed/timed out under fault injection) folds to a
    well-defined all-zero record instead of dividing by zero.
    """
    completed = ledger.completed
    if not completed:
        return ServingStats(
            arrival=arrival, batcher=batcher,
            max_batch=policy.max_batch, max_wait=policy.max_wait,
            slo=slo, n_requests=0, n_servers=n_servers, duration=0.0,
            offered_rate=offered_rate, throughput=0.0, goodput=0.0,
            slo_attainment=0.0, latency_mean=0.0, latency_p50=0.0,
            latency_p95=0.0, latency_p99=0.0, latency_max=0.0,
            queue_delay_mean=0.0, service_mean=0.0,
            mean_batch_size=0.0, utilization=0.0)
    latencies = sorted(c.latency for c in completed)
    n = len(latencies)
    first_arrival = min(c.request.arrival for c in completed)
    duration = max(c.finished for c in completed) - first_arrival
    within = sum(1 for lat in latencies if lat <= slo)

    return ServingStats(
        arrival=arrival,
        batcher=batcher,
        max_batch=policy.max_batch,
        max_wait=policy.max_wait,
        slo=slo,
        n_requests=n,
        n_servers=n_servers,
        duration=duration,
        offered_rate=offered_rate,
        throughput=n / duration,
        goodput=within / duration,
        slo_attainment=within / n,
        latency_mean=sum(latencies) / n,
        latency_p50=percentile(latencies, 50),
        latency_p95=percentile(latencies, 95),
        latency_p99=percentile(latencies, 99),
        latency_max=latencies[-1],
        queue_delay_mean=sum(c.queue_delay for c in completed) / n,
        service_mean=sum(c.service for c in completed) / n,
        mean_batch_size=ledger.work_items / ledger.n_batches,
        utilization=min(1.0, ledger.busy / (n_servers * duration)),
    )


def build_trace(arrival: str, rate: float, n_requests: int, seed: int,
                decode_steps: int,
                replay: Sequence[float] | None = None) \
        -> tuple[Request, ...]:
    """Materialize the named arrival process."""
    if arrival == "poisson":
        return poisson_trace(rate, n_requests, seed=seed,
                             decode_steps=decode_steps)
    if arrival in ("bursty", "mmpp"):
        return mmpp_trace(rate, n_requests, seed=seed,
                          decode_steps=decode_steps)
    if arrival == "replay":
        if replay is None:
            raise ValueError("replay arrivals require explicit offsets")
        return replayed_trace(replay, decode_steps=decode_steps)
    raise ValueError(f"unknown arrival process {arrival!r}; "
                     f"known: poisson, bursty, replay")


def _record_serving(ledger: ServingLedger, batcher: str) -> None:
    """Telemetry probe: per-batcher loop counters, folded once after
    the event loop from its ledger."""
    from repro.telemetry.registry import metrics_registry
    registry = metrics_registry()
    if registry is None:
        return
    labels = {"batcher": batcher}
    registry.counter(
        "repro_serving_requests_total",
        "requests completed by the serving loop",
        **labels).inc(len(ledger.completed))
    registry.counter(
        "repro_serving_batches_total",
        "batches dispatched (dynamic) or iterations executed "
        "(continuous)", **labels).inc(ledger.n_batches)
    registry.counter(
        "repro_serving_work_items_total",
        "request-batch memberships",
        **labels).inc(ledger.work_items)


def simulate_serving(config: SystemConfig, network: str, *,
                     arrival: str = "poisson", rate: float = 100.0,
                     n_requests: int = DEFAULT_REQUESTS, seed: int = 0,
                     slo: float = DEFAULT_SLO,
                     max_batch: int = 8, max_wait: float = 0.002,
                     batcher: str = "dynamic",
                     decode_steps: int = DEFAULT_DECODE_STEPS,
                     replay: Sequence[float] | None = None) \
        -> SimulationResult:
    """Run one complete serving simulation on a design point.

    Returns a :class:`SimulationResult` in ``ExecutionMode.SERVING``
    whose ``serving`` field carries the request-level statistics and
    whose per-batch fields (breakdown, streamed bytes) come from the
    representative forward simulation at ``max_batch`` -- so serving
    cells cache, replay, and render through the campaign machinery
    unchanged.
    """
    if batcher == "continuous":
        # Iteration-level batching admits at every step boundary and
        # never holds work to fill a batch: the wait deadline does not
        # exist in this discipline.  Normalize it to zero so reported
        # stats, labels, and cache keys cannot pretend otherwise.
        max_wait = 0.0
    policy = BatchPolicy(max_batch=max_batch, max_wait=max_wait)
    decode = decode_steps if batcher == "continuous" else 1
    trace = build_trace(arrival, rate, n_requests, seed, decode, replay)
    arrival_label = (f"{arrival}(r={rate:g},n={n_requests},s={seed})"
                     if arrival != "replay"
                     else f"replay(n={len(trace)})")

    from repro.telemetry.spans import span

    # Fault injection: serve on the degraded design and derive the
    # shed/timeout thresholds from the SLO; with the null model every
    # branch below collapses to the healthy configuration and the
    # loops run with recovery off (byte-identical).
    fault = active_fault_model(config)
    serve_config = degraded_config(config) if fault is not None \
        else config
    shed_delay = (fault.shed_slo_mult * slo
                  if fault is not None and fault.shed_slo_mult > 0
                  else None)
    timeout = (fault.timeout_slo_mult * slo
               if fault is not None and fault.timeout_slo_mult > 0
               else None)

    prefill = BatchLatencyModel(serve_config, network)
    if batcher == "dynamic":
        with span("serving:batcher", batcher=batcher):
            ledger = run_dynamic(trace, policy, prefill,
                                 n_servers=config.n_devices,
                                 shed_delay=shed_delay,
                                 timeout=timeout)
        n_servers = config.n_devices
    elif batcher == "continuous":
        step = BatchLatencyModel(serve_config, decode_network(network))
        with span("serving:batcher", batcher=batcher):
            ledger = run_continuous(trace, policy, step,
                                    prefill_fn=prefill,
                                    shed_delay=shed_delay,
                                    timeout=timeout)
        n_servers = 1
    else:
        raise ValueError(f"unknown batcher {batcher!r}; "
                         f"known: dynamic, continuous")

    stats = compute_stats(ledger, arrival=arrival_label,
                          batcher=batcher, policy=policy, slo=slo,
                          offered_rate=rate, n_servers=n_servers)
    _record_serving(ledger, batcher)
    shape = prefill.result(max_batch)
    faults = (_serving_fault_stats(fault, config, ledger, stats,
                                   prefill, network, max_batch)
              if fault is not None else None)

    return SimulationResult(
        system=config.name,
        network=shape.network,
        batch=max_batch,
        strategy=ParallelStrategy.DATA,
        n_devices=config.n_devices,
        # An empty ledger has zero duration; fall back to the
        # representative batch latency so the result stays valid.
        iteration_time=(stats.duration if stats.n_requests > 0
                        else shape.iteration_time),
        breakdown=shape.breakdown,
        offload_bytes_per_device=shape.offload_bytes_per_device,
        sync_bytes=shape.sync_bytes,
        host_traffic_bytes_per_device=shape.host_traffic_bytes_per_device,
        fits_in_device_memory=shape.fits_in_device_memory,
        mode=ExecutionMode.SERVING,
        serving=stats,
        prefetch=shape.prefetch,
        faults=faults,
    )


def _serving_fault_stats(fault, config: SystemConfig,
                         ledger: ServingLedger, stats: ServingStats,
                         prefill: BatchLatencyModel, network: str,
                         max_batch: int) -> FaultStats:
    """Fold one faulted serving run's ledger into :class:`FaultStats`.

    ``slowdown`` compares the representative ``max_batch`` latency on
    the degraded design against the healthy twin; ``availability`` is
    the fraction of offered requests that completed in time (shed and
    timed-out requests are the casualties).
    """
    healthy = BatchLatencyModel(healthy_config(config), network)
    slowdown = prefill(max_batch) / healthy(max_batch)
    offered = (stats.n_requests + ledger.n_shed + ledger.n_timed_out)
    standing = (fault.standing_multiplier < 1.0
                or fault.compute_multiplier > 1.0
                or (fault.node_loss_fraction > 0
                    and config.memory_node is not None))
    fraction = 1.0 if standing else fault.flap_duty
    result = FaultStats(
        model=fault.name,
        injected_events=(fault.flap_count_until(stats.duration)
                         + fault.standing_events()),
        degraded_seconds=fraction * stats.duration,
        slowdown=slowdown,
        retries=0,
        shed_requests=ledger.n_shed,
        timed_out_requests=ledger.n_timed_out,
        recovery_bytes=0,
        availability=(stats.n_requests / offered if offered else 1.0),
    )
    record_fault_stats(result, "serving")
    return result
