"""Request-arrival trace generation.

Three arrival models, all seeded and fully deterministic (the campaign
cache requires byte-identical replay):

* :func:`poisson_trace` -- memoryless arrivals at a fixed rate, the
  classic open-loop serving assumption;
* :func:`mmpp_trace` -- a two-state Markov-modulated Poisson process
  alternating between a quiet and a bursty rate, the diurnal/bursty
  traffic shape that exposes queueing tails a steady Poisson hides;
* :func:`replayed_trace` -- explicit arrival offsets (e.g. replayed
  from a production log).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Iterable


@dataclass(frozen=True)
class Request:
    """One inference request."""

    rid: int
    arrival: float
    #: Autoregressive decode steps (continuous batching only; the
    #: dynamic batcher serves each request in a single forward pass).
    decode_steps: int = 1

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError("arrival time must be non-negative")
        if self.decode_steps < 1:
            raise ValueError("decode_steps must be >= 1")


def poisson_trace(rate: float, n_requests: int, seed: int = 0,
                  decode_steps: int = 1) -> tuple[Request, ...]:
    """Poisson arrivals at ``rate`` requests/sec."""
    _check(rate, n_requests)
    rng = random.Random(seed)
    t = 0.0
    requests = []
    for rid in range(n_requests):
        t += rng.expovariate(rate)
        requests.append(Request(rid=rid, arrival=t,
                                decode_steps=decode_steps))
    return tuple(requests)


def mmpp_trace(rate: float, n_requests: int, seed: int = 0,
               burst_ratio: float = 4.0, dwell: float = 0.25,
               decode_steps: int = 1) -> tuple[Request, ...]:
    """Two-state MMPP arrivals averaging ``rate`` requests/sec.

    The process alternates between a bursty state at
    ``2 * rate * b / (b + 1)`` and a quiet state at
    ``2 * rate / (b + 1)`` (``b = burst_ratio``), so equal expected
    dwell in each state yields a time-average of exactly ``rate``.
    State residency is exponential with mean ``dwell`` seconds.
    """
    _check(rate, n_requests)
    if burst_ratio < 1.0:
        raise ValueError("burst_ratio must be >= 1")
    if dwell <= 0:
        raise ValueError("dwell must be positive")
    rng = random.Random(seed)
    rates = (2.0 * rate / (burst_ratio + 1.0),
             2.0 * rate * burst_ratio / (burst_ratio + 1.0))
    state = rng.randrange(2)
    t = 0.0
    switch_at = rng.expovariate(1.0 / dwell)
    requests = []
    rid = 0
    while rid < n_requests:
        gap = rng.expovariate(rates[state])
        if t + gap >= switch_at:
            # The state flips before this arrival would land; restart
            # the (memoryless) draw from the switch instant.
            t = switch_at
            switch_at = t + rng.expovariate(1.0 / dwell)
            state = 1 - state
            continue
        t += gap
        requests.append(Request(rid=rid, arrival=t,
                                decode_steps=decode_steps))
        rid += 1
    return tuple(requests)


def replayed_trace(arrivals: Iterable[float],
                   decode_steps: int = 1) -> tuple[Request, ...]:
    """Requests at explicit arrival offsets (seconds, sorted)."""
    times = list(arrivals)
    if not times:
        raise ValueError("a replayed trace needs at least one arrival")
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("replayed arrivals must be non-decreasing")
    return tuple(Request(rid=i, arrival=t, decode_steps=decode_steps)
                 for i, t in enumerate(times))


def _check(rate: float, n_requests: int) -> None:
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if n_requests <= 0:
        raise ValueError("need at least one request")
