"""Inference-serving subsystem: traces, dynamic batching, SLO metrics.

The paper evaluates steady-state training iterations; this package
stresses the same six design points with the workload the ROADMAP's
north star actually names -- bursty multi-tenant request traffic:

* :mod:`repro.serving.traces` generates request-arrival traces
  (Poisson, bursty MMPP, replayed);
* :mod:`repro.serving.batcher` forms batches under a max-batch-size +
  max-wait-deadline policy, with a continuous-batching variant for the
  transformer workloads' decode phase;
* :mod:`repro.serving.server` drives per-batch forward-only
  simulations through :func:`repro.core.simulator.simulate` and folds
  the request ledger into :class:`repro.core.metrics.ServingStats`
  (p50/p95/p99, goodput under an SLO, tail amplification);
* :mod:`repro.serving.cli` is ``python -m repro serve``.

Campaigns sweep serving cells through
:func:`repro.campaign.serving_grid`, and
``experiments/serving_comparison.py`` replays the paper's six-design
comparison under rising load until SLO collapse.
"""

from repro.serving.batcher import BatchPolicy, form_batches, next_batch
from repro.serving.server import (BatchLatencyModel, CompletedRequest,
                                  ServingLedger, compute_stats,
                                  percentile, run_continuous,
                                  run_dynamic, simulate_serving)
from repro.serving.traces import (Request, mmpp_trace, poisson_trace,
                                  replayed_trace)

__all__ = [
    "BatchLatencyModel", "BatchPolicy", "CompletedRequest", "Request",
    "ServingLedger", "compute_stats", "form_batches", "mmpp_trace",
    "next_batch", "percentile", "poisson_trace", "replayed_trace",
    "run_continuous", "run_dynamic", "simulate_serving",
]
