"""Dynamic batching policy and batch formation.

A :class:`BatchPolicy` is the classic serving trade-off knob: a batch
dispatches when it reaches ``max_batch`` requests or when the oldest
queued request has waited ``max_wait`` seconds, whichever comes first
(and never before a server is free).  :func:`next_batch` is the pure
decision function -- the server loop in :mod:`repro.serving.server`
and the property-based tests both drive it -- and
:func:`form_batches` folds a whole trace into batches against a single
server, which is the behaviour the FIFO/no-loss invariants are stated
over.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.serving.traces import Request


@dataclass(frozen=True)
class BatchPolicy:
    """Max-batch-size + max-wait-deadline dynamic batching."""

    max_batch: int = 8
    max_wait: float = 0.002  # seconds

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait < 0:
            raise ValueError("max_wait must be non-negative")

    @property
    def name(self) -> str:
        return f"b{self.max_batch}w{self.max_wait * 1e3:g}ms"


def next_batch(queue: Sequence[Request], start: int, free_at: float,
               policy: BatchPolicy) -> tuple[int, float]:
    """Decide the next batch from FIFO position ``start``.

    Returns ``(count, dispatch_time)``: the batch takes requests
    ``queue[start:start + count]`` and starts service at
    ``dispatch_time``.  The batch closes at the earliest of (a) the
    ``max_batch``-th arrival, (b) the head request's deadline
    ``arrival + max_wait``, or (c) immediately, if the server only
    freed up after that deadline passed -- every request that arrived
    while the server was busy is already waiting then.
    """
    head = queue[start].arrival
    earliest = max(free_at, head)
    limit = min(len(queue) - start, policy.max_batch)

    # Requests already waiting when service could begin.
    count = 0
    while count < limit and queue[start + count].arrival <= earliest:
        count += 1
    if count == limit:
        return count, earliest

    deadline = head + policy.max_wait
    if earliest >= deadline:
        return count, earliest

    # Hold the batch open for late arrivals until full or deadline.
    while count < limit and queue[start + count].arrival <= deadline:
        count += 1
    if count == limit and count == policy.max_batch:
        return count, max(earliest, queue[start + count - 1].arrival)
    return count, deadline


def form_batches(trace: Sequence[Request],
                 policy: BatchPolicy) -> list[tuple[int, int, float]]:
    """Partition a trace into batches against one always-on server.

    Returns ``(start, count, dispatch)`` triples in FIFO order,
    assuming zero service time (pure batch formation).  The server
    loop re-derives dispatch times with real service times; this
    helper exists so batching invariants can be tested in isolation.
    """
    batches = []
    index = 0
    while index < len(trace):
        count, dispatch = next_batch(trace, index, 0.0, policy)
        batches.append((index, count, dispatch))
        index += count
    return batches
