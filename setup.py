"""Setuptools shim for environments without PEP 517 build isolation.

All metadata lives in ``pyproject.toml``: the ``src/`` package layout,
``python_requires``, and the ``repro`` console entry point.  This file
only exists so legacy ``python setup.py``-style tooling keeps working;
``pip install -e .`` reads the pyproject configuration either way.
"""

from setuptools import setup

setup()
